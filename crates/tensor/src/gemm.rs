//! Cache-blocked GEMM cores: the shared hot path under every dense layer,
//! im2col convolution, and the int8 engine.
//!
//! Two siblings live here:
//!
//! * [`gemm_f32`] — `f32` matrix multiply with BLIS-style `MC`/`KC`/`NC`
//!   blocking, packed `MR`×`NR` micro-kernel panels, and an [`EpilogueF32`]
//!   hook applied to each finished output row segment (bias fusion);
//! * [`gemm_i8`] — `i8`×`i8`→`i32` with the same blocking, operands widened
//!   to `i16` during packing (the activation zero-point offset is folded into
//!   the pack step), and an [`EpilogueI32`] hook that owns the writeback —
//!   the quantization engine fuses requantization, zero-point shift, clamp,
//!   and saturation counting into it instead of running a separate
//!   per-element pass.
//!
//! Transposed operands are handled in the pack step ([`Layout`]), so the
//! micro-kernel only ever sees contiguous panels; `matmul`, `matmul_at_b`,
//! and `matmul_a_bt` are all the same core with different packers.
//!
//! # Pre-packed weights
//!
//! Attacks run thousands of forward passes against *fixed* weights, so the
//! weight operand's panels can be packed once and reused: [`PackedF32`]
//! (either operand role) and [`PackedI16`] (weights-as-`A`, widened to
//! `i16`; the activation zero point stays folded into the per-call `B`
//! pack exactly as before) hold every `(block, strip)` panel in the same
//! layout the per-call pack step produces, so [`gemm_f32_pre`] /
//! [`gemm_i8_pre`] read them in place and the result is bit-identical to a
//! fresh pack. The content-addressed cache in [`crate::packcache`] keys
//! these artifacts by an fnv1a64 fingerprint of bytes + shape + layout, so
//! any weight mutation (a training step, a `diva-fault` bitflip, a reload)
//! changes the key and misses cleanly.
//!
//! # Determinism rule (DESIGN.md §7, §9)
//!
//! The accumulation order is fixed by the tiling, not by data or thread
//! count: every output element is a single accumulator folded over `k` in
//! ascending order (the micro-kernel reloads its accumulators from `C`
//! between `KC` blocks rather than summing per-block partials). That makes
//! the blocked result *bit-identical* to a naive ascending-`k` scalar loop
//! for `f32`, and exactly equal to any-order accumulation for integers. The
//! small-size fallback and the pruned-sparse path in `ops` preserve the same
//! per-element fold, so kernel dispatch never changes numerics.
//!
//! Intra-op parallelism obeys the same rule as an instance of the DESIGN.md
//! §7 fixed-order-reduction contract: large shapes fan the `jc` column tiles
//! (or, for tall single-`jc` shapes, the `ic` row tiles) over the `diva-par`
//! pool. Tile boundaries are the `NC`/`MC` constants — never a function of
//! the worker count — each `C` tile is written by exactly one worker running
//! the full ascending-`pc` fold for its elements, and the merge plus
//! epilogue sweep happen on the calling thread in ascending tile order. So
//! blocked output is byte-identical across any `DIVA_JOBS`, including the
//! serial fallback. Panel packing is never duplicated where it matters: `jc`
//! workers pack only their own `B` column panels, and `ic` workers share a
//! read-only full `B` pre-pack built (or fetched from the cache) before the
//! fan-out.

use std::cell::Cell;

/// Micro-kernel tile rows (output rows accumulated in registers at once).
pub const MR: usize = 4;
/// Micro-kernel tile columns (output columns accumulated in registers).
pub const NR: usize = 8;
/// Rows of `A` packed per block (sized for L2 residency of the `A` panel).
const MC: usize = 64;
/// Shared depth per block (`A` and `B` panel depth).
const KC: usize = 256;
/// Columns of `B` packed per block.
const NC: usize = 512;

/// Below this many multiply-adds (`m·n·k`) the packed path costs more than
/// it saves; a plain ascending-`k` loop runs instead. Dispatch depends only
/// on the shape, so it is deterministic and preserves the fold order.
const SMALL_MNK: usize = 32 * 32 * 32;

/// Below this many multiply-adds the intra-op fan-out (thread spawn + stripe
/// merge) costs more than it saves and the blocked loop stays on the calling
/// thread. Like `SMALL_MNK` this depends only on the shape — and the fold
/// order is identical either way, so the threshold never changes numerics.
const PAR_MIN_MNK: usize = 1 << 21;

/// True when `(m, n, k)` takes the blocked (packing) path rather than the
/// small-shape ascending-`k` loop. Consumers use this to skip weight
/// fingerprinting for shapes that would never read packed panels.
#[inline]
pub fn blocked_path(m: usize, n: usize, k: usize) -> bool {
    m * n * k > SMALL_MNK
}

/// How an operand's storage relates to its mathematical orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Stored row-major in the mathematical shape (`A`: `[m, k]`,
    /// `B`: `[k, n]`).
    RowMajor,
    /// Stored row-major as the transpose of the mathematical shape
    /// (`A`: `[k, m]`, `B`: `[n, k]`); the pack step untransposes.
    Transposed,
}

/// Which GEMM operand a [`PackedF32`] stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedRole {
    /// The left operand (`[m, k]`): convolution / engine weights.
    A,
    /// The right operand (`[k, n]`): dense-layer weights.
    B,
}

/// Hook applied to each finished `f32` output row segment.
///
/// Called exactly once per `(row, column-block)` pair, after the full depth
/// `k` has been accumulated into `row` (so the hook sees final sums). With
/// the default blocking a row is a single segment unless `n > 512`. The
/// call order is fixed — ascending column block, then ascending row — on
/// both the serial and the threaded path.
pub trait EpilogueF32 {
    /// `i` is the output row, `j0` the first column of `row` within the
    /// output matrix.
    fn finish(&mut self, i: usize, j0: usize, row: &mut [f32]);
}

/// The identity epilogue: plain `C = A·B`.
pub struct NoEpilogue;

impl EpilogueF32 for NoEpilogue {
    #[inline]
    fn finish(&mut self, _i: usize, _j0: usize, _row: &mut [f32]) {}
}

/// Adds `bias[i]` to every element of output row `i` (convolution bias,
/// where rows are output channels).
pub struct BiasRows<'a>(pub &'a [f32]);

impl EpilogueF32 for BiasRows<'_> {
    #[inline]
    fn finish(&mut self, i: usize, _j0: usize, row: &mut [f32]) {
        let b = self.0[i];
        for v in row {
            *v += b;
        }
    }
}

/// Adds `bias[j]` to every element of output column `j` (dense-layer bias,
/// where columns are output features).
pub struct BiasCols<'a>(pub &'a [f32]);

impl EpilogueF32 for BiasCols<'_> {
    #[inline]
    fn finish(&mut self, _i: usize, j0: usize, row: &mut [f32]) {
        for (v, &b) in row.iter_mut().zip(&self.0[j0..]) {
            *v += b;
        }
    }
}

/// Hook that owns the writeback of finished `i32` accumulator row segments.
///
/// [`gemm_i8`] never writes `out` itself: after row `i`'s columns
/// `j0..j0 + acc.len()` have accumulated the full depth, the hook maps the
/// raw `i32` sums to output bytes (requantization, zero-point shift, clamp,
/// saturation counting) and stores them wherever `out`'s layout demands.
pub trait EpilogueI32 {
    /// `acc` holds the finished accumulators for output row `i`, columns
    /// `j0..j0 + acc.len()`.
    fn row(&mut self, i: usize, j0: usize, acc: &[i32], out: &mut [i8]);
}

/// No-op `i32` epilogue (accumulators discarded); used where the core runs
/// for its raw sums only.
struct NoRequant;

impl EpilogueI32 for NoRequant {
    #[inline]
    fn row(&mut self, _i: usize, _j0: usize, _acc: &[i32], _out: &mut [i8]) {}
}

// ---------------------------------------------------------------------------
// Pre-packed weight panels.
// ---------------------------------------------------------------------------

/// Borrowed view of a pre-packed operand: every `(block, strip)` panel in
/// the exact layout the per-call pack step would produce, plus the start
/// offset of each block in build order.
#[derive(Clone, Copy)]
struct PanelRef<'a, T> {
    data: &'a [T],
    offsets: &'a [usize],
}

impl<'a, T> PanelRef<'a, T> {
    #[inline]
    fn block(&self, idx: usize) -> &'a [T] {
        let start = self.offsets[idx];
        let end = self
            .offsets
            .get(idx + 1)
            .copied()
            .unwrap_or(self.data.len());
        &self.data[start..end]
    }
}

/// Offsets view for a single-block pre-pack (a depthwise channel).
const ONE_BLOCK: &[usize] = &[0];

/// Pre-packed `f32` operand panels ([`PackedRole::A`]: blocks ordered
/// `pc`-major/`ic`-minor; [`PackedRole::B`]: `jc`-major/`pc`-minor —
/// matching the access order of the blocked loop).
pub struct PackedF32 {
    role: PackedRole,
    /// `m` for role `A`, `n` for role `B`.
    dim: usize,
    k: usize,
    data: Vec<f32>,
    offsets: Vec<usize>,
}

impl PackedF32 {
    /// Packs a full `A` operand (`[m, k]` mathematical shape) into `MR`-row
    /// strips for every `(pc, ic)` block.
    pub fn pack_a(a: &[f32], layout: Layout, m: usize, k: usize) -> PackedF32 {
        assert!(a.len() >= m * k, "PackedF32::pack_a: A shorter than m*k");
        let mut data = Vec::with_capacity(m.div_ceil(MR) * MR * k);
        let mut offsets = Vec::new();
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                let start = data.len();
                offsets.push(start);
                data.resize(start + mc.div_ceil(MR) * kc * MR, 0.0);
                pack_a_f32(a, layout, m, k, ic, mc, pc, kc, &mut data[start..]);
            }
        }
        PackedF32 {
            role: PackedRole::A,
            dim: m,
            k,
            data,
            offsets,
        }
    }

    /// Packs a full `B` operand (`[k, n]` mathematical shape) into `NR`-column
    /// strips for every `(jc, pc)` block.
    pub fn pack_b(b: &[f32], layout: Layout, k: usize, n: usize) -> PackedF32 {
        assert!(b.len() >= k * n, "PackedF32::pack_b: B shorter than k*n");
        let mut data = Vec::with_capacity(n.div_ceil(NR) * NR * k);
        let mut offsets = Vec::new();
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                let start = data.len();
                offsets.push(start);
                data.resize(start + nc.div_ceil(NR) * kc * NR, 0.0);
                pack_b_f32(b, layout, n, k, pc, kc, jc, nc, &mut data[start..]);
            }
        }
        PackedF32 {
            role: PackedRole::B,
            dim: n,
            k,
            data,
            offsets,
        }
    }

    /// Which operand this pre-pack stands in for.
    pub fn role(&self) -> PackedRole {
        self.role
    }

    /// Heap footprint in bytes (cache budget accounting).
    pub fn footprint(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
            + self.offsets.capacity() * std::mem::size_of::<usize>()
    }

    fn panels(&self) -> PanelRef<'_, f32> {
        PanelRef {
            data: &self.data,
            offsets: &self.offsets,
        }
    }
}

/// Pre-packed int8 weights (`A` operand), widened to `i16` at pack time so
/// the micro-kernel reads them directly. Weight quantization is symmetric —
/// no zero point is folded here; the *activation* zero point stays in the
/// per-call `B` pack, exactly as for a fresh pack.
pub struct PackedI16 {
    /// Rows (`m`) — or channel count for a depthwise pack.
    dim: usize,
    k: usize,
    dw: bool,
    data: Vec<i16>,
    /// Whole-matrix pack: block offsets (`pc`-major/`ic`-minor). Depthwise
    /// pack: the per-channel block-offset template (every channel has the
    /// same internal structure at stride `k * MR`).
    offsets: Vec<usize>,
}

impl PackedI16 {
    /// Packs full `[m, k]` row-major `i8` weights into `MR`-row `i16` strips
    /// for every `(pc, ic)` block.
    pub fn pack_a(w: &[i8], m: usize, k: usize) -> PackedI16 {
        assert!(w.len() >= m * k, "PackedI16::pack_a: A shorter than m*k");
        let mut data = Vec::with_capacity(m.div_ceil(MR) * MR * k);
        let mut offsets = Vec::new();
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                let start = data.len();
                offsets.push(start);
                data.resize(start + mc.div_ceil(MR) * kc * MR, 0);
                pack_a_i16(w, k, ic, mc, pc, kc, &mut data[start..]);
            }
        }
        PackedI16 {
            dim: m,
            k,
            dw: false,
            data,
            offsets,
        }
    }

    /// Packs depthwise weights (`[c, k]`, each row an independent `1×k`
    /// GEMM `A`) into one `MR`-strip pack per channel.
    pub fn pack_dw(w: &[i8], c: usize, k: usize) -> PackedI16 {
        assert!(w.len() >= c * k, "PackedI16::pack_dw: W shorter than c*k");
        let channel_len = k * MR;
        let mut data = vec![0i16; c * channel_len];
        let mut offsets = Vec::new();
        for pc in (0..k).step_by(KC) {
            offsets.push(pc * MR);
        }
        for ci in 0..c {
            let chan = &mut data[ci * channel_len..(ci + 1) * channel_len];
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                pack_a_i16(
                    &w[ci * k..(ci + 1) * k],
                    k,
                    0,
                    1,
                    pc,
                    kc,
                    &mut chan[pc * MR..],
                );
            }
        }
        PackedI16 {
            dim: c,
            k,
            dw: true,
            data,
            offsets,
        }
    }

    /// View of a whole-matrix pack as the `A` operand of one GEMM.
    ///
    /// # Panics
    ///
    /// Panics on a depthwise pack (use [`PackedI16::dw_channel`]).
    pub fn as_a(&self) -> PackedI16Ref<'_> {
        assert!(!self.dw, "as_a on a depthwise pack");
        PackedI16Ref {
            m: self.dim,
            k: self.k,
            panels: PanelRef {
                data: &self.data,
                offsets: &self.offsets,
            },
        }
    }

    /// View of one depthwise channel as the `1×k` `A` operand of its GEMM.
    ///
    /// # Panics
    ///
    /// Panics on a whole-matrix pack or out-of-range channel.
    pub fn dw_channel(&self, ci: usize) -> PackedI16Ref<'_> {
        assert!(self.dw, "dw_channel on a whole-matrix pack");
        let len = self.k * MR;
        let offsets = if self.offsets.len() == 1 {
            ONE_BLOCK
        } else {
            &self.offsets
        };
        PackedI16Ref {
            m: 1,
            k: self.k,
            panels: PanelRef {
                data: &self.data[ci * len..(ci + 1) * len],
                offsets,
            },
        }
    }

    /// Heap footprint in bytes (cache budget accounting).
    pub fn footprint(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<i16>()
            + self.offsets.capacity() * std::mem::size_of::<usize>()
    }
}

/// Borrowed pre-packed `A` panels for one [`gemm_i8_pre`] call.
#[derive(Clone, Copy)]
pub struct PackedI16Ref<'a> {
    m: usize,
    k: usize,
    panels: PanelRef<'a, i16>,
}

// ---------------------------------------------------------------------------
// Workspace: reusable packing buffers, one set per thread.
// ---------------------------------------------------------------------------

/// Scratch buffers reused across calls on the same thread. `Vec::resize`
/// never shrinks capacity, so each buffer grows monotonically to the largest
/// shape seen on its thread and steady-state calls allocate nothing (the
/// `alloc_regress` test enforces this).
#[derive(Default)]
struct Workspace {
    ap_f32: Vec<f32>,
    bp_f32: Vec<f32>,
    ap_i16: Vec<i16>,
    bp_i16: Vec<i16>,
    c_i32: Vec<i32>,
}

thread_local! {
    /// Taken (not borrowed) for the duration of a call so a reentrant GEMM
    /// from inside an epilogue allocates fresh buffers instead of panicking.
    static WORKSPACE: Cell<Option<Box<Workspace>>> = const { Cell::new(None) };
}

fn with_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    let mut ws = WORKSPACE
        .with(|slot| slot.take())
        .unwrap_or_else(|| Box::new(Workspace::default()));
    let r = f(&mut ws);
    WORKSPACE.with(|slot| slot.set(Some(ws)));
    r
}

// ---------------------------------------------------------------------------
// f32 core
// ---------------------------------------------------------------------------

#[inline]
fn a_at(a: &[f32], layout: Layout, m: usize, k: usize, i: usize, p: usize) -> f32 {
    match layout {
        Layout::RowMajor => a[i * k + p],
        Layout::Transposed => a[p * m + i],
    }
}

/// Blocked `C[m,n] = A[m,k] · B[k,n]`, with `epi` applied to each finished
/// row segment. See the module docs for the determinism contract.
///
/// # Panics
///
/// Panics if an operand slice is shorter than its shape requires.
#[allow(clippy::too_many_arguments)] // a GEMM is (shape, A, B, C, epilogue); grouping would obscure it
pub fn gemm_f32<E: EpilogueF32>(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    out: &mut [f32],
    epi: &mut E,
) {
    gemm_f32_pre(m, n, k, a, a_layout, b, b_layout, None, out, epi);
}

/// [`gemm_f32`] with an optional pre-packed operand (role taken from the
/// artifact). Raw slices are still required — the small-shape path and any
/// non-pre-packed operand read them — and must hold the same values the
/// artifact was packed from; the result is bit-identical either way.
///
/// # Panics
///
/// Panics if a slice is shorter than its shape requires or the pre-pack's
/// shape does not match `(m, n, k)`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_f32_pre<E: EpilogueF32>(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    pre: Option<&PackedF32>,
    out: &mut [f32],
    epi: &mut E,
) {
    assert!(a.len() >= m * k, "gemm_f32: A shorter than m*k");
    assert!(b.len() >= k * n, "gemm_f32: B shorter than k*n");
    assert!(out.len() >= m * n, "gemm_f32: out shorter than m*n");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for i in 0..m {
            let row = &mut out[i * n..(i + 1) * n];
            row.fill(0.0);
            epi.finish(i, 0, row);
        }
        return;
    }
    if m * n * k <= SMALL_MNK {
        gemm_f32_small(m, n, k, a, a_layout, b, b_layout, out, epi);
        return;
    }
    let (pre_a, pre_b) = match pre {
        Some(p) => {
            let want = match p.role {
                PackedRole::A => m,
                PackedRole::B => n,
            };
            assert!(
                p.dim == want && p.k == k,
                "gemm_f32_pre: pre-pack shape ({}, {}) does not match call",
                p.dim,
                p.k
            );
            match p.role {
                PackedRole::A => (Some(p.panels()), None),
                PackedRole::B => (None, Some(p.panels())),
            }
        }
        None => (None, None),
    };
    let jc_blocks = n.div_ceil(NC);
    let ic_blocks = m.div_ceil(MC);
    if m * n * k >= PAR_MIN_MNK
        && (jc_blocks > 1 || ic_blocks > 1)
        && diva_par::jobs() > 1
        && !diva_par::in_worker()
    {
        threaded_f32(
            m, n, k, a, a_layout, pre_a, b, b_layout, pre_b, out, epi, jc_blocks, ic_blocks,
        );
        return;
    }
    with_workspace(|ws| {
        blocked_f32(
            m,
            n,
            k,
            a,
            a_layout,
            pre_a,
            b,
            b_layout,
            pre_b,
            0,
            n,
            0,
            m,
            out,
            n,
            Some(epi),
            &mut ws.ap_f32,
            &mut ws.bp_f32,
        );
    });
}

/// Ascending-`k` loop for shapes where packing cannot pay for itself.
#[allow(clippy::too_many_arguments)]
fn gemm_f32_small<E: EpilogueF32>(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    out: &mut [f32],
    epi: &mut E,
) {
    for i in 0..m {
        let row = &mut out[i * n..(i + 1) * n];
        row.fill(0.0);
        for p in 0..k {
            let av = a_at(a, a_layout, m, k, i, p);
            match b_layout {
                Layout::RowMajor => {
                    for (o, &bv) in row.iter_mut().zip(&b[p * n..(p + 1) * n]) {
                        *o += av * bv;
                    }
                }
                Layout::Transposed => {
                    for (j, o) in row.iter_mut().enumerate() {
                        *o += av * b[j * k + p];
                    }
                }
            }
        }
        epi.finish(i, 0, row);
    }
}

/// The blocked loop nest over a window of whole `jc`/`ic` tiles.
///
/// `dst` is row-major with leading dimension `ldc` and its origin at global
/// element `(ic_lo, jc_lo)`; window bounds must be tile-aligned at the low
/// edge and clamped to `n`/`m` at the high edge, so tile geometry (and with
/// it the fold order) is independent of the window. Pre-packed panels are
/// read in place; missing ones are packed into the caller's buffers. When
/// `epi` is `None` the window holds raw sums on return (threaded workers;
/// the caller then applies the epilogue in deterministic order).
#[allow(clippy::too_many_arguments)]
fn blocked_f32<E: EpilogueF32>(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    pre_a: Option<PanelRef<'_, f32>>,
    b: &[f32],
    b_layout: Layout,
    pre_b: Option<PanelRef<'_, f32>>,
    jc_lo: usize,
    jc_hi: usize,
    ic_lo: usize,
    ic_hi: usize,
    dst: &mut [f32],
    ldc: usize,
    mut epi: Option<&mut E>,
    ap_buf: &mut Vec<f32>,
    bp_buf: &mut Vec<f32>,
) {
    let pc_blocks = k.div_ceil(KC);
    let ic_blocks = m.div_ceil(MC);
    for jc in (jc_lo..jc_hi).step_by(NC) {
        let nc = NC.min(jc_hi - jc);
        let n_strips = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let first = pc == 0;
            let last = pc + kc == k;
            let bpanels: &[f32] = match pre_b {
                Some(p) => p.block((jc / NC) * pc_blocks + pc / KC),
                None => {
                    bp_buf.resize(n_strips * kc * NR, 0.0);
                    pack_b_f32(b, b_layout, n, k, pc, kc, jc, nc, bp_buf);
                    &bp_buf[..n_strips * kc * NR]
                }
            };
            for ic in (ic_lo..ic_hi).step_by(MC) {
                let mc = MC.min(ic_hi - ic);
                let m_strips = mc.div_ceil(MR);
                let apanels: &[f32] = match pre_a {
                    Some(p) => p.block((pc / KC) * ic_blocks + ic / MC),
                    None => {
                        ap_buf.resize(m_strips * kc * MR, 0.0);
                        pack_a_f32(a, a_layout, m, k, ic, mc, pc, kc, ap_buf);
                        &ap_buf[..m_strips * kc * MR]
                    }
                };
                for js in 0..n_strips {
                    let j0 = jc + js * NR;
                    let nr = NR.min(jc + nc - j0);
                    let bpanel = &bpanels[js * kc * NR..(js + 1) * kc * NR];
                    for is in 0..m_strips {
                        let i0 = ic + is * MR;
                        let mr = MR.min(ic + mc - i0);
                        let apanel = &apanels[is * kc * MR..(is + 1) * kc * MR];
                        let base = (i0 - ic_lo) * ldc + (j0 - jc_lo);
                        if mr == MR && nr == NR {
                            kern_f32(kc, apanel, bpanel, &mut dst[base..], ldc, first);
                        } else {
                            // Edge tile: stage through a padded MR×NR buffer.
                            let mut tile = [0.0f32; MR * NR];
                            if !first {
                                for (r, trow) in tile.chunks_mut(NR).enumerate().take(mr) {
                                    let src = base + r * ldc;
                                    trow[..nr].copy_from_slice(&dst[src..src + nr]);
                                }
                            }
                            kern_f32(kc, apanel, bpanel, &mut tile, NR, first);
                            for (r, trow) in tile.chunks(NR).enumerate().take(mr) {
                                let d = base + r * ldc;
                                dst[d..d + nr].copy_from_slice(&trow[..nr]);
                            }
                        }
                    }
                }
                if last {
                    if let Some(e) = epi.as_deref_mut() {
                        for i in ic..ic + mc {
                            let d = (i - ic_lo) * ldc + (jc - jc_lo);
                            e.finish(i, jc, &mut dst[d..d + nc]);
                        }
                    }
                }
            }
        }
    }
}

/// Intra-op fan-out for the f32 core (see the module determinism docs):
/// multi-`jc` shapes stripe columns across workers, tall single-`jc` shapes
/// stripe `ic` row slabs. Workers return raw-sum stripes; the merge and the
/// epilogue sweep run on the calling thread in ascending tile order, giving
/// the exact epilogue call sequence of the serial path.
#[allow(clippy::too_many_arguments)]
fn threaded_f32<E: EpilogueF32>(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    pre_a: Option<PanelRef<'_, f32>>,
    b: &[f32],
    b_layout: Layout,
    pre_b: Option<PanelRef<'_, f32>>,
    out: &mut [f32],
    epi: &mut E,
    jc_blocks: usize,
    ic_blocks: usize,
) {
    if jc_blocks > 1 {
        let stripes: Vec<Vec<f32>> = diva_par::par_map_indexed(jc_blocks, |t| {
            let jc = t * NC;
            let jc_hi = n.min(jc + NC);
            let mut stripe = vec![0.0f32; m * (jc_hi - jc)];
            with_workspace(|ws| {
                blocked_f32::<NoEpilogue>(
                    m,
                    n,
                    k,
                    a,
                    a_layout,
                    pre_a,
                    b,
                    b_layout,
                    pre_b,
                    jc,
                    jc_hi,
                    0,
                    m,
                    &mut stripe,
                    jc_hi - jc,
                    None,
                    &mut ws.ap_f32,
                    &mut ws.bp_f32,
                );
            });
            stripe
        });
        for (t, stripe) in stripes.iter().enumerate() {
            let jc = t * NC;
            let nc = n.min(jc + NC) - jc;
            for i in 0..m {
                out[i * n + jc..i * n + jc + nc].copy_from_slice(&stripe[i * nc..(i + 1) * nc]);
            }
        }
        for t in 0..jc_blocks {
            let jc = t * NC;
            let nc = n.min(jc + NC) - jc;
            for i in 0..m {
                epi.finish(i, jc, &mut out[i * n + jc..i * n + jc + nc]);
            }
        }
    } else {
        // Row-slab fan-out: every worker reads every B panel, so a full B
        // pre-pack is built once here (on the calling thread) unless the
        // caller already supplied one from the cache.
        let owned_b = if pre_b.is_none() {
            Some(PackedF32::pack_b(b, b_layout, k, n))
        } else {
            None
        };
        let pre_b = pre_b.or_else(|| owned_b.as_ref().map(|p| p.panels()));
        let slabs: Vec<Vec<f32>> = diva_par::par_map_indexed(ic_blocks, |t| {
            let ic = t * MC;
            let ic_hi = m.min(ic + MC);
            let mut slab = vec![0.0f32; (ic_hi - ic) * n];
            with_workspace(|ws| {
                blocked_f32::<NoEpilogue>(
                    m,
                    n,
                    k,
                    a,
                    a_layout,
                    pre_a,
                    b,
                    b_layout,
                    pre_b,
                    0,
                    n,
                    ic,
                    ic_hi,
                    &mut slab,
                    n,
                    None,
                    &mut ws.ap_f32,
                    &mut ws.bp_f32,
                );
            });
            slab
        });
        for (t, slab) in slabs.iter().enumerate() {
            let ic = t * MC;
            let mc = m.min(ic + MC) - ic;
            out[ic * n..(ic + mc) * n].copy_from_slice(slab);
        }
        for i in 0..m {
            epi.finish(i, 0, &mut out[i * n..(i + 1) * n]);
        }
    }
}

/// The `MR`×`NR` micro-kernel: accumulators live in registers, are seeded
/// from `c` when this is not the first `KC` block (continuing the per-element
/// ascending-`k` fold), and vectorize across the `NR` lanes.
#[inline]
fn kern_f32(kc: usize, apanel: &[f32], bpanel: &[f32], c: &mut [f32], ldc: usize, first: bool) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (r, row) in acc.iter_mut().enumerate() {
            row.copy_from_slice(&c[r * ldc..r * ldc + NR]);
        }
    }
    for p in 0..kc {
        let av: &[f32; MR] = apanel[p * MR..p * MR + MR].try_into().unwrap();
        let bv: &[f32; NR] = bpanel[p * NR..p * NR + NR].try_into().unwrap();
        for (row, &al) in acc.iter_mut().zip(av) {
            for (x, &bl) in row.iter_mut().zip(bv) {
                *x += al * bl;
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        c[r * ldc..r * ldc + NR].copy_from_slice(row);
    }
}

/// Packs `A[ic..ic+mc, pc..pc+kc]` into `MR`-row strips (`ap[strip][p][r]`),
/// zero-padding the ragged strip so the micro-kernel never branches.
#[allow(clippy::too_many_arguments)]
fn pack_a_f32(
    a: &[f32],
    layout: Layout,
    m: usize,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    ap: &mut [f32],
) {
    for (is, strip) in ap.chunks_mut(kc * MR).enumerate().take(mc.div_ceil(MR)) {
        let i0 = ic + is * MR;
        let mr = MR.min(ic + mc - i0);
        if mr < MR {
            strip.fill(0.0);
        }
        match layout {
            Layout::RowMajor => {
                for r in 0..mr {
                    let arow = &a[(i0 + r) * k + pc..(i0 + r) * k + pc + kc];
                    for (p, &v) in arow.iter().enumerate() {
                        strip[p * MR + r] = v;
                    }
                }
            }
            Layout::Transposed => {
                for (p, dst) in strip.chunks_mut(MR).enumerate() {
                    let arow = &a[(pc + p) * m + i0..(pc + p) * m + i0 + mr];
                    dst[..mr].copy_from_slice(arow);
                }
            }
        }
    }
}

/// Packs `B[pc..pc+kc, jc..jc+nc]` into `NR`-column strips
/// (`bp[strip][p][c]`), zero-padding the ragged strip.
#[allow(clippy::too_many_arguments)]
fn pack_b_f32(
    b: &[f32],
    layout: Layout,
    n: usize,
    k: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    bp: &mut [f32],
) {
    for (js, strip) in bp.chunks_mut(kc * NR).enumerate().take(nc.div_ceil(NR)) {
        let j0 = jc + js * NR;
        let nr = NR.min(jc + nc - j0);
        if nr < NR {
            strip.fill(0.0);
        }
        match layout {
            Layout::RowMajor => {
                for (p, dst) in strip.chunks_mut(NR).enumerate() {
                    let brow = &b[(pc + p) * n + j0..(pc + p) * n + j0 + nr];
                    dst[..nr].copy_from_slice(brow);
                }
            }
            Layout::Transposed => {
                for c in 0..nr {
                    let bcol = &b[(j0 + c) * k + pc..(j0 + c) * k + pc + kc];
                    for (p, &v) in bcol.iter().enumerate() {
                        strip[p * NR + c] = v;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// i8 core
// ---------------------------------------------------------------------------

/// Blocked `i8`×`i8`→`i32` GEMM: `acc[m,n] = A[m,k] · (B[k,n] - b_offset)`.
///
/// `A` (weights) is `[m, k]` row-major `i8` with no offset (symmetric weight
/// quantization). `B` (activations) carries the activation zero point, which
/// the pack step subtracts while widening to `i16`. `out` is never written by
/// the core itself — every finished accumulator row segment goes through
/// `epi`, which owns requantization and placement.
///
/// Integer accumulation is associative, so the result is exactly equal to a
/// naive triple loop regardless of blocking.
///
/// # Panics
///
/// Panics if an operand slice is shorter than its shape requires.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8<E: EpilogueI32>(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    b_layout: Layout,
    b_offset: i32,
    out: &mut [i8],
    epi: &mut E,
) {
    gemm_i8_pre(m, n, k, a, None, b, b_layout, b_offset, out, epi);
}

/// [`gemm_i8`] with optionally pre-packed (`i16`-widened) weights. The raw
/// `a` slice is still required — the small-shape path reads it — and must
/// hold the values the artifact was packed from; the accumulators are
/// identical either way.
///
/// # Panics
///
/// Panics if a slice is shorter than its shape requires or the pre-pack's
/// shape does not match `(m, k)`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_pre<E: EpilogueI32>(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    pre_a: Option<PackedI16Ref<'_>>,
    b: &[i8],
    b_layout: Layout,
    b_offset: i32,
    out: &mut [i8],
    epi: &mut E,
) {
    assert!(a.len() >= m * k, "gemm_i8: A shorter than m*k");
    assert!(b.len() >= k * n, "gemm_i8: B shorter than k*n");
    if m == 0 || n == 0 {
        return;
    }
    let pre = pre_a.map(|p| {
        assert!(
            p.m == m && p.k == k,
            "gemm_i8_pre: pre-pack shape ({}, {}) does not match call",
            p.m,
            p.k
        );
        p.panels
    });
    let jc_blocks = n.div_ceil(NC);
    let ic_blocks = m.div_ceil(MC);
    if k > 0
        && m * n * k > SMALL_MNK
        && m * n * k >= PAR_MIN_MNK
        && (jc_blocks > 1 || ic_blocks > 1)
        && diva_par::jobs() > 1
        && !diva_par::in_worker()
    {
        threaded_i8(
            m, n, k, a, pre, b, b_layout, b_offset, out, epi, jc_blocks, ic_blocks,
        );
        return;
    }
    with_workspace(|ws| {
        ws.c_i32.clear();
        ws.c_i32.resize(m * n, 0);
        let mut scratch = std::mem::take(&mut ws.c_i32);
        if k == 0 {
            for i in 0..m {
                epi.row(i, 0, &scratch[i * n..(i + 1) * n], out);
            }
        } else if m * n * k <= SMALL_MNK {
            gemm_i8_small(m, n, k, a, b, b_layout, b_offset, &mut scratch);
            for i in 0..m {
                epi.row(i, 0, &scratch[i * n..(i + 1) * n], out);
            }
        } else {
            blocked_i8(
                m,
                n,
                k,
                a,
                pre,
                b,
                b_layout,
                b_offset,
                0,
                n,
                0,
                m,
                &mut scratch,
                n,
                Some((epi, out)),
                &mut ws.ap_i16,
                &mut ws.bp_i16,
            );
        }
        ws.c_i32 = scratch;
    });
}

#[allow(clippy::too_many_arguments)]
fn gemm_i8_small(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    b_layout: Layout,
    b_offset: i32,
    acc: &mut [i32],
) {
    for i in 0..m {
        let row = &mut acc[i * n..(i + 1) * n];
        for p in 0..k {
            let av = a[i * k + p] as i32;
            if av == 0 {
                continue; // exact for integers: skips the whole lane pass
            }
            match b_layout {
                Layout::RowMajor => {
                    for (o, &bv) in row.iter_mut().zip(&b[p * n..(p + 1) * n]) {
                        *o += av * (bv as i32 - b_offset);
                    }
                }
                Layout::Transposed => {
                    for (j, o) in row.iter_mut().enumerate() {
                        *o += av * (b[j * k + p] as i32 - b_offset);
                    }
                }
            }
        }
    }
}

/// The i8 sibling of [`blocked_f32`]: the blocked loop nest over a window of
/// whole tiles, accumulating into `dst` (origin at `(ic_lo, jc_lo)`, leading
/// dimension `ldc`). When `epi_out` is `Some`, each finished row segment is
/// handed to the epilogue while still hot (serial path); workers pass `None`
/// and the caller sweeps the raw accumulators afterwards.
#[allow(clippy::too_many_arguments)]
fn blocked_i8<E: EpilogueI32>(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    pre_a: Option<PanelRef<'_, i16>>,
    b: &[i8],
    b_layout: Layout,
    b_offset: i32,
    jc_lo: usize,
    jc_hi: usize,
    ic_lo: usize,
    ic_hi: usize,
    dst: &mut [i32],
    ldc: usize,
    mut epi_out: Option<(&mut E, &mut [i8])>,
    ap_buf: &mut Vec<i16>,
    bp_buf: &mut Vec<i16>,
) {
    let ic_blocks = m.div_ceil(MC);
    for jc in (jc_lo..jc_hi).step_by(NC) {
        let nc = NC.min(jc_hi - jc);
        let n_strips = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let first = pc == 0;
            let last = pc + kc == k;
            bp_buf.resize(n_strips * kc * NR, 0);
            pack_b_i16(b, b_layout, n, k, pc, kc, jc, nc, b_offset, bp_buf);
            for ic in (ic_lo..ic_hi).step_by(MC) {
                let mc = MC.min(ic_hi - ic);
                let m_strips = mc.div_ceil(MR);
                let apanels: &[i16] = match pre_a {
                    Some(p) => p.block((pc / KC) * ic_blocks + ic / MC),
                    None => {
                        ap_buf.resize(m_strips * kc * MR, 0);
                        pack_a_i16(a, k, ic, mc, pc, kc, ap_buf);
                        &ap_buf[..m_strips * kc * MR]
                    }
                };
                for js in 0..n_strips {
                    let j0 = jc + js * NR;
                    let nr = NR.min(jc + nc - j0);
                    let bpanel = &bp_buf[js * kc * NR..(js + 1) * kc * NR];
                    for is in 0..m_strips {
                        let i0 = ic + is * MR;
                        let mr = MR.min(ic + mc - i0);
                        let apanel = &apanels[is * kc * MR..(is + 1) * kc * MR];
                        let base = (i0 - ic_lo) * ldc + (j0 - jc_lo);
                        if mr == MR && nr == NR {
                            kern_i16(kc, apanel, bpanel, &mut dst[base..], ldc, first);
                        } else {
                            let mut tile = [0i32; MR * NR];
                            if !first {
                                for (r, trow) in tile.chunks_mut(NR).enumerate().take(mr) {
                                    let src = base + r * ldc;
                                    trow[..nr].copy_from_slice(&dst[src..src + nr]);
                                }
                            }
                            kern_i16(kc, apanel, bpanel, &mut tile, NR, first);
                            for (r, trow) in tile.chunks(NR).enumerate().take(mr) {
                                let d = base + r * ldc;
                                dst[d..d + nr].copy_from_slice(&trow[..nr]);
                            }
                        }
                    }
                }
                if last {
                    if let Some((epi, out)) = epi_out.as_mut() {
                        for i in ic..ic + mc {
                            let d = (i - ic_lo) * ldc + (jc - jc_lo);
                            epi.row(i, jc, &dst[d..d + nc], out);
                        }
                    }
                }
            }
        }
    }
}

/// Intra-op fan-out for the i8 core. Workers return raw `i32` accumulator
/// stripes; the epilogue sweep reads them on the calling thread in the
/// serial path's order (ascending `jc`, then ascending row), so requant
/// counters and writeback are identical across job counts.
#[allow(clippy::too_many_arguments)]
fn threaded_i8<E: EpilogueI32>(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    pre_a: Option<PanelRef<'_, i16>>,
    b: &[i8],
    b_layout: Layout,
    b_offset: i32,
    out: &mut [i8],
    epi: &mut E,
    jc_blocks: usize,
    ic_blocks: usize,
) {
    if jc_blocks > 1 {
        let stripes: Vec<Vec<i32>> = diva_par::par_map_indexed(jc_blocks, |t| {
            let jc = t * NC;
            let jc_hi = n.min(jc + NC);
            let mut stripe = vec![0i32; m * (jc_hi - jc)];
            with_workspace(|ws| {
                blocked_i8::<NoRequant>(
                    m,
                    n,
                    k,
                    a,
                    pre_a,
                    b,
                    b_layout,
                    b_offset,
                    jc,
                    jc_hi,
                    0,
                    m,
                    &mut stripe,
                    jc_hi - jc,
                    None,
                    &mut ws.ap_i16,
                    &mut ws.bp_i16,
                );
            });
            stripe
        });
        for (t, stripe) in stripes.iter().enumerate() {
            let jc = t * NC;
            let nc = n.min(jc + NC) - jc;
            for i in 0..m {
                epi.row(i, jc, &stripe[i * nc..(i + 1) * nc], out);
            }
        }
    } else {
        let slabs: Vec<Vec<i32>> = diva_par::par_map_indexed(ic_blocks, |t| {
            let ic = t * MC;
            let ic_hi = m.min(ic + MC);
            let mut slab = vec![0i32; (ic_hi - ic) * n];
            with_workspace(|ws| {
                blocked_i8::<NoRequant>(
                    m,
                    n,
                    k,
                    a,
                    pre_a,
                    b,
                    b_layout,
                    b_offset,
                    0,
                    n,
                    ic,
                    ic_hi,
                    &mut slab,
                    n,
                    None,
                    &mut ws.ap_i16,
                    &mut ws.bp_i16,
                );
            });
            slab
        });
        for (t, slab) in slabs.iter().enumerate() {
            let ic = t * MC;
            let mc = m.min(ic + MC) - ic;
            for r in 0..mc {
                epi.row(ic + r, 0, &slab[r * n..(r + 1) * n], out);
            }
        }
    }
}

#[inline]
fn kern_i16(kc: usize, apanel: &[i16], bpanel: &[i16], c: &mut [i32], ldc: usize, first: bool) {
    let mut acc = [[0i32; NR]; MR];
    if !first {
        for (r, row) in acc.iter_mut().enumerate() {
            row.copy_from_slice(&c[r * ldc..r * ldc + NR]);
        }
    }
    for p in 0..kc {
        let av: &[i16; MR] = apanel[p * MR..p * MR + MR].try_into().unwrap();
        let bv: &[i16; NR] = bpanel[p * NR..p * NR + NR].try_into().unwrap();
        for (row, &al) in acc.iter_mut().zip(av) {
            let al = al as i32;
            for (x, &bl) in row.iter_mut().zip(bv) {
                *x += al * bl as i32;
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        c[r * ldc..r * ldc + NR].copy_from_slice(row);
    }
}

/// Packs weights (`[m, k]` row-major `i8`) into `MR`-row `i16` strips.
fn pack_a_i16(a: &[i8], k: usize, ic: usize, mc: usize, pc: usize, kc: usize, ap: &mut [i16]) {
    for (is, strip) in ap.chunks_mut(kc * MR).enumerate().take(mc.div_ceil(MR)) {
        let i0 = ic + is * MR;
        let mr = MR.min(ic + mc - i0);
        if mr < MR {
            strip.fill(0);
        }
        for r in 0..mr {
            let arow = &a[(i0 + r) * k + pc..(i0 + r) * k + pc + kc];
            for (p, &v) in arow.iter().enumerate() {
                strip[p * MR + r] = v as i16;
            }
        }
    }
}

/// Packs activations into `NR`-column `i16` strips, subtracting the zero
/// point while widening (`i8 - zp` always fits `i16`). Padding lanes hold 0
/// and therefore contribute nothing.
#[allow(clippy::too_many_arguments)]
fn pack_b_i16(
    b: &[i8],
    layout: Layout,
    n: usize,
    k: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    offset: i32,
    bp: &mut [i16],
) {
    let off = offset as i16;
    for (js, strip) in bp.chunks_mut(kc * NR).enumerate().take(nc.div_ceil(NR)) {
        let j0 = jc + js * NR;
        let nr = NR.min(jc + nc - j0);
        if nr < NR {
            strip.fill(0);
        }
        match layout {
            Layout::RowMajor => {
                for (p, dst) in strip.chunks_mut(NR).enumerate() {
                    let brow = &b[(pc + p) * n + j0..(pc + p) * n + j0 + nr];
                    for (d, &v) in dst.iter_mut().zip(brow) {
                        *d = v as i16 - off;
                    }
                }
            }
            Layout::Transposed => {
                for c in 0..nr {
                    let bcol = &b[(j0 + c) * k + pc..(j0 + c) * k + pc + kc];
                    for (p, &v) in bcol.iter().enumerate() {
                        strip[p * NR + c] = v as i16 - off;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Naive references: the differential oracles for tests and benches.
// ---------------------------------------------------------------------------

/// Naive `f32` reference (`j`-inner ascending-`k` fold). Used by the
/// differential battery and the microbench catalog; never by production code.
pub fn naive_f32(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                let av = a_at(a, a_layout, m, k, i, p);
                let bv = match b_layout {
                    Layout::RowMajor => b[p * n + j],
                    Layout::Transposed => b[j * k + p],
                };
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Naive `i32`-accumulate reference for the int8 core. Returns the raw
/// accumulators (pre-epilogue); [`gemm_i8`] must match these **exactly**.
pub fn naive_i8_i32(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    b_layout: Layout,
    b_offset: i32,
) -> Vec<i32> {
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                let bv = match b_layout {
                    Layout::RowMajor => b[p * n + j],
                    Layout::Transposed => b[j * k + p],
                } as i32;
                acc += a[i * k + p] as i32 * (bv - b_offset);
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Epilogue that copies raw accumulators out (used by tests and benches to
/// observe pre-requantization sums through the public entry point).
pub struct CaptureAcc<'a> {
    /// Destination for the raw accumulators, `m*n` row-major.
    pub acc: &'a mut [i32],
    /// Output row length `n`.
    pub n: usize,
}

impl EpilogueI32 for CaptureAcc<'_> {
    fn row(&mut self, i: usize, j0: usize, acc: &[i32], _out: &mut [i8]) {
        self.acc[i * self.n + j0..i * self.n + j0 + acc.len()].copy_from_slice(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic value stream (SplitMix64) independent of `rand`.
    struct Mix(u64);

    impl Mix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        fn f32(&mut self) -> f32 {
            (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0
        }

        fn i8(&mut self) -> i8 {
            (self.next_u64() & 0xff) as u8 as i8
        }
    }

    #[test]
    fn blocked_matches_naive_f32_across_shapes_and_layouts() {
        let mut mix = Mix(7);
        for (m, n, k) in [(1, 1, 1), (5, 9, 3), (33, 65, 17), (64, 96, 300)] {
            let a: Vec<f32> = (0..m * k).map(|_| mix.f32()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| mix.f32()).collect();
            for al in [Layout::RowMajor, Layout::Transposed] {
                for bl in [Layout::RowMajor, Layout::Transposed] {
                    let want = naive_f32(m, n, k, &a, al, &b, bl);
                    let mut got = vec![0.0f32; m * n];
                    gemm_f32(m, n, k, &a, al, &b, bl, &mut got, &mut NoEpilogue);
                    for (g, w) in got.iter().zip(&want) {
                        assert!(
                            (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
                            "m={m} n={n} k={k} {al:?}/{bl:?}: {g} vs {w}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_f32_is_bitwise_ascending_k() {
        // The determinism contract: the blocked path equals the naive
        // ascending-k fold bit for bit, not just within tolerance.
        let mut mix = Mix(11);
        let (m, n, k) = (37, 41, 530); // several KC blocks, ragged tiles
        let a: Vec<f32> = (0..m * k).map(|_| mix.f32()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| mix.f32()).collect();
        let want = naive_f32(m, n, k, &a, Layout::RowMajor, &b, Layout::RowMajor);
        let mut got = vec![0.0f32; m * n];
        gemm_f32(
            m,
            n,
            k,
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            &mut got,
            &mut NoEpilogue,
        );
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn i8_matches_naive_exactly() {
        let mut mix = Mix(13);
        for (m, n, k) in [(1, 64, 9), (24, 256, 108), (7, 5, 1), (4, 1000, 600)] {
            let a: Vec<i8> = (0..m * k).map(|_| mix.i8()).collect();
            let b: Vec<i8> = (0..k * n).map(|_| mix.i8()).collect();
            for bl in [Layout::RowMajor, Layout::Transposed] {
                for off in [0i32, -7, 13] {
                    let want = naive_i8_i32(m, n, k, &a, &b, bl, off);
                    let mut got = vec![0i32; m * n];
                    let mut sink = vec![0i8; 0];
                    gemm_i8(
                        m,
                        n,
                        k,
                        &a,
                        &b,
                        bl,
                        off,
                        &mut sink,
                        &mut CaptureAcc { acc: &mut got, n },
                    );
                    assert_eq!(got, want, "m={m} n={n} k={k} {bl:?} off={off}");
                }
            }
        }
    }

    #[test]
    fn prepacked_operands_match_fresh_pack_bitwise() {
        let mut mix = Mix(17);
        let (m, n, k) = (70, 96, 300); // blocked path, ragged tiles, 2 KC blocks
        let a: Vec<f32> = (0..m * k).map(|_| mix.f32()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| mix.f32()).collect();
        for al in [Layout::RowMajor, Layout::Transposed] {
            let mut fresh = vec![0.0f32; m * n];
            gemm_f32(
                m,
                n,
                k,
                &a,
                al,
                &b,
                Layout::RowMajor,
                &mut fresh,
                &mut NoEpilogue,
            );
            let pa = PackedF32::pack_a(&a, al, m, k);
            let mut got = vec![0.0f32; m * n];
            gemm_f32_pre(
                m,
                n,
                k,
                &a,
                al,
                &b,
                Layout::RowMajor,
                Some(&pa),
                &mut got,
                &mut NoEpilogue,
            );
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "packed A, {al:?}"
            );
        }
        for bl in [Layout::RowMajor, Layout::Transposed] {
            let mut fresh = vec![0.0f32; m * n];
            gemm_f32(
                m,
                n,
                k,
                &a,
                Layout::RowMajor,
                &b,
                bl,
                &mut fresh,
                &mut NoEpilogue,
            );
            let pb = PackedF32::pack_b(&b, bl, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm_f32_pre(
                m,
                n,
                k,
                &a,
                Layout::RowMajor,
                &b,
                bl,
                Some(&pb),
                &mut got,
                &mut NoEpilogue,
            );
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "packed B, {bl:?}"
            );
        }
    }

    #[test]
    fn prepacked_i8_weights_are_exact() {
        let mut mix = Mix(19);
        let (m, n, k) = (24, 256, 108); // blocked path
        let a: Vec<i8> = (0..m * k).map(|_| mix.i8()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| mix.i8()).collect();
        let want = naive_i8_i32(m, n, k, &a, &b, Layout::RowMajor, -7);
        let pa = PackedI16::pack_a(&a, m, k);
        let mut got = vec![0i32; m * n];
        let mut sink = vec![0i8; 0];
        gemm_i8_pre(
            m,
            n,
            k,
            &a,
            Some(pa.as_a()),
            &b,
            Layout::RowMajor,
            -7,
            &mut sink,
            &mut CaptureAcc { acc: &mut got, n },
        );
        assert_eq!(got, want);
    }

    #[test]
    fn dw_channel_pack_matches_whole_row() {
        let mut mix = Mix(23);
        let (c, k, n) = (6, 9, 8000); // 1×9 GEMMs, n large enough to block
        let w: Vec<i8> = (0..c * k).map(|_| mix.i8()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| mix.i8()).collect();
        let dw = PackedI16::pack_dw(&w, c, k);
        for ci in 0..c {
            let wrow = &w[ci * k..(ci + 1) * k];
            let want = naive_i8_i32(1, n, k, wrow, &b, Layout::RowMajor, 3);
            let mut got = vec![0i32; n];
            let mut sink = vec![0i8; 0];
            gemm_i8_pre(
                1,
                n,
                k,
                wrow,
                Some(dw.dw_channel(ci)),
                &b,
                Layout::RowMajor,
                3,
                &mut sink,
                &mut CaptureAcc { acc: &mut got, n },
            );
            assert_eq!(got, want, "channel {ci}");
        }
    }

    #[test]
    fn zero_sized_dims_are_no_ops() {
        let mut out = vec![7.0f32; 0];
        gemm_f32(
            0,
            4,
            3,
            &[],
            Layout::RowMajor,
            &[0.0; 12],
            Layout::RowMajor,
            &mut out,
            &mut NoEpilogue,
        );
        let mut out = vec![1.0f32; 6];
        // k = 0: output is all zeros (empty sum), epilogue still runs.
        gemm_f32(
            2,
            3,
            0,
            &[],
            Layout::RowMajor,
            &[],
            Layout::RowMajor,
            &mut out,
            &mut BiasRows(&[1.0, 2.0]),
        );
        assert_eq!(out, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn epilogue_sees_final_sums_once_per_segment() {
        struct CountRows<'a>(&'a mut Vec<(usize, usize, usize)>);
        impl EpilogueF32 for CountRows<'_> {
            fn finish(&mut self, i: usize, j0: usize, row: &mut [f32]) {
                self.0.push((i, j0, row.len()));
            }
        }
        let (m, n, k) = (9, 20, 700); // multiple KC blocks: epilogue must not repeat
        let a = vec![0.5f32; m * k];
        let b = vec![0.25f32; k * n];
        let mut out = vec![0.0f32; m * n];
        let mut calls = Vec::new();
        gemm_f32(
            m,
            n,
            k,
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            &mut out,
            &mut CountRows(&mut calls),
        );
        assert_eq!(calls.len(), m);
        assert!(calls.iter().all(|&(_, j0, len)| j0 == 0 && len == n));
    }
}
