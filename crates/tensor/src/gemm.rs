//! Cache-blocked GEMM cores: the shared hot path under every dense layer,
//! im2col convolution, and the int8 engine.
//!
//! Two siblings live here:
//!
//! * [`gemm_f32`] — `f32` matrix multiply with BLIS-style `MC`/`KC`/`NC`
//!   blocking, packed `MR`×`NR` micro-kernel panels, and an [`EpilogueF32`]
//!   hook applied to each finished output row segment (bias fusion);
//! * [`gemm_i8`] — `i8`×`i8`→`i32` with the same blocking, operands widened
//!   to `i16` during packing (the activation zero-point offset is folded into
//!   the pack step), and an [`EpilogueI32`] hook that owns the writeback —
//!   the quantization engine fuses requantization, zero-point shift, clamp,
//!   and saturation counting into it instead of running a separate
//!   per-element pass.
//!
//! Transposed operands are handled in the pack step ([`Layout`]), so the
//! micro-kernel only ever sees contiguous panels; `matmul`, `matmul_at_b`,
//! and `matmul_a_bt` are all the same core with different packers.
//!
//! # Determinism rule (DESIGN.md §9)
//!
//! The accumulation order is fixed by the tiling, not by data or thread
//! count: every output element is a single accumulator folded over `k` in
//! ascending order (the micro-kernel reloads its accumulators from `C`
//! between `KC` blocks rather than summing per-block partials). That makes
//! the blocked result *bit-identical* to a naive ascending-`k` scalar loop
//! for `f32`, and exactly equal to any-order accumulation for integers. The
//! small-size fallback and the pruned-sparse path in `ops` preserve the same
//! per-element fold, so kernel dispatch never changes numerics.

use std::cell::Cell;

/// Micro-kernel tile rows (output rows accumulated in registers at once).
pub const MR: usize = 4;
/// Micro-kernel tile columns (output columns accumulated in registers).
pub const NR: usize = 8;
/// Rows of `A` packed per block (sized for L2 residency of the `A` panel).
const MC: usize = 64;
/// Shared depth per block (`A` and `B` panel depth).
const KC: usize = 256;
/// Columns of `B` packed per block.
const NC: usize = 512;

/// Below this many multiply-adds (`m·n·k`) the packed path costs more than
/// it saves; a plain ascending-`k` loop runs instead. Dispatch depends only
/// on the shape, so it is deterministic and preserves the fold order.
const SMALL_MNK: usize = 32 * 32 * 32;

/// How an operand's storage relates to its mathematical orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Stored row-major in the mathematical shape (`A`: `[m, k]`,
    /// `B`: `[k, n]`).
    RowMajor,
    /// Stored row-major as the transpose of the mathematical shape
    /// (`A`: `[k, m]`, `B`: `[n, k]`); the pack step untransposes.
    Transposed,
}

/// Hook applied to each finished `f32` output row segment.
///
/// Called exactly once per `(row, column-block)` pair, after the full depth
/// `k` has been accumulated into `row` (so the hook sees final sums). With
/// the default blocking a row is a single segment unless `n > 512`.
pub trait EpilogueF32 {
    /// `i` is the output row, `j0` the first column of `row` within the
    /// output matrix.
    fn finish(&mut self, i: usize, j0: usize, row: &mut [f32]);
}

/// The identity epilogue: plain `C = A·B`.
pub struct NoEpilogue;

impl EpilogueF32 for NoEpilogue {
    #[inline]
    fn finish(&mut self, _i: usize, _j0: usize, _row: &mut [f32]) {}
}

/// Adds `bias[i]` to every element of output row `i` (convolution bias,
/// where rows are output channels).
pub struct BiasRows<'a>(pub &'a [f32]);

impl EpilogueF32 for BiasRows<'_> {
    #[inline]
    fn finish(&mut self, i: usize, _j0: usize, row: &mut [f32]) {
        let b = self.0[i];
        for v in row {
            *v += b;
        }
    }
}

/// Adds `bias[j]` to every element of output column `j` (dense-layer bias,
/// where columns are output features).
pub struct BiasCols<'a>(pub &'a [f32]);

impl EpilogueF32 for BiasCols<'_> {
    #[inline]
    fn finish(&mut self, _i: usize, j0: usize, row: &mut [f32]) {
        for (v, &b) in row.iter_mut().zip(&self.0[j0..]) {
            *v += b;
        }
    }
}

/// Hook that owns the writeback of finished `i32` accumulator row segments.
///
/// [`gemm_i8`] never writes `out` itself: after row `i`'s columns
/// `j0..j0 + acc.len()` have accumulated the full depth, the hook maps the
/// raw `i32` sums to output bytes (requantization, zero-point shift, clamp,
/// saturation counting) and stores them wherever `out`'s layout demands.
pub trait EpilogueI32 {
    /// `acc` holds the finished accumulators for output row `i`, columns
    /// `j0..j0 + acc.len()`.
    fn row(&mut self, i: usize, j0: usize, acc: &[i32], out: &mut [i8]);
}

// ---------------------------------------------------------------------------
// Workspace: reusable packing buffers, one set per thread.
// ---------------------------------------------------------------------------

/// Scratch buffers reused across calls on the same thread.
#[derive(Default)]
struct Workspace {
    ap_f32: Vec<f32>,
    bp_f32: Vec<f32>,
    ap_i16: Vec<i16>,
    bp_i16: Vec<i16>,
    c_i32: Vec<i32>,
}

thread_local! {
    /// Taken (not borrowed) for the duration of a call so a reentrant GEMM
    /// from inside an epilogue allocates fresh buffers instead of panicking.
    static WORKSPACE: Cell<Option<Box<Workspace>>> = const { Cell::new(None) };
}

fn with_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    let mut ws = WORKSPACE
        .with(|slot| slot.take())
        .unwrap_or_else(|| Box::new(Workspace::default()));
    let r = f(&mut ws);
    WORKSPACE.with(|slot| slot.set(Some(ws)));
    r
}

// ---------------------------------------------------------------------------
// f32 core
// ---------------------------------------------------------------------------

#[inline]
fn a_at(a: &[f32], layout: Layout, m: usize, k: usize, i: usize, p: usize) -> f32 {
    match layout {
        Layout::RowMajor => a[i * k + p],
        Layout::Transposed => a[p * m + i],
    }
}

/// Blocked `C[m,n] = A[m,k] · B[k,n]`, with `epi` applied to each finished
/// row segment. See the module docs for the determinism contract.
///
/// # Panics
///
/// Panics if an operand slice is shorter than its shape requires.
#[allow(clippy::too_many_arguments)] // a GEMM is (shape, A, B, C, epilogue); grouping would obscure it
pub fn gemm_f32<E: EpilogueF32>(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    out: &mut [f32],
    epi: &mut E,
) {
    assert!(a.len() >= m * k, "gemm_f32: A shorter than m*k");
    assert!(b.len() >= k * n, "gemm_f32: B shorter than k*n");
    assert!(out.len() >= m * n, "gemm_f32: out shorter than m*n");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for i in 0..m {
            let row = &mut out[i * n..(i + 1) * n];
            row.fill(0.0);
            epi.finish(i, 0, row);
        }
        return;
    }
    if m * n * k <= SMALL_MNK {
        gemm_f32_small(m, n, k, a, a_layout, b, b_layout, out, epi);
        return;
    }
    with_workspace(|ws| {
        gemm_f32_blocked(m, n, k, a, a_layout, b, b_layout, out, epi, ws);
    });
}

/// Ascending-`k` loop for shapes where packing cannot pay for itself.
#[allow(clippy::too_many_arguments)]
fn gemm_f32_small<E: EpilogueF32>(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    out: &mut [f32],
    epi: &mut E,
) {
    for i in 0..m {
        let row = &mut out[i * n..(i + 1) * n];
        row.fill(0.0);
        for p in 0..k {
            let av = a_at(a, a_layout, m, k, i, p);
            match b_layout {
                Layout::RowMajor => {
                    for (o, &bv) in row.iter_mut().zip(&b[p * n..(p + 1) * n]) {
                        *o += av * bv;
                    }
                }
                Layout::Transposed => {
                    for (j, o) in row.iter_mut().enumerate() {
                        *o += av * b[j * k + p];
                    }
                }
            }
        }
        epi.finish(i, 0, row);
    }
}

#[allow(clippy::too_many_arguments)]
fn gemm_f32_blocked<E: EpilogueF32>(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    out: &mut [f32],
    epi: &mut E,
    ws: &mut Workspace,
) {
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let n_strips = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let first = pc == 0;
            let last = pc + kc == k;
            ws.bp_f32.resize(n_strips * kc * NR, 0.0);
            pack_b_f32(b, b_layout, n, k, pc, kc, jc, nc, &mut ws.bp_f32);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                let m_strips = mc.div_ceil(MR);
                ws.ap_f32.resize(m_strips * kc * MR, 0.0);
                pack_a_f32(a, a_layout, m, k, ic, mc, pc, kc, &mut ws.ap_f32);
                for js in 0..n_strips {
                    let j0 = jc + js * NR;
                    let nr = NR.min(jc + nc - j0);
                    let bpanel = &ws.bp_f32[js * kc * NR..(js + 1) * kc * NR];
                    for is in 0..m_strips {
                        let i0 = ic + is * MR;
                        let mr = MR.min(ic + mc - i0);
                        let apanel = &ws.ap_f32[is * kc * MR..(is + 1) * kc * MR];
                        if mr == MR && nr == NR {
                            kern_f32(kc, apanel, bpanel, &mut out[i0 * n + j0..], n, first);
                        } else {
                            // Edge tile: stage through a padded MR×NR buffer.
                            let mut tile = [0.0f32; MR * NR];
                            if !first {
                                for (r, trow) in tile.chunks_mut(NR).enumerate().take(mr) {
                                    let src = (i0 + r) * n + j0;
                                    trow[..nr].copy_from_slice(&out[src..src + nr]);
                                }
                            }
                            kern_f32(kc, apanel, bpanel, &mut tile, NR, first);
                            for (r, trow) in tile.chunks(NR).enumerate().take(mr) {
                                let dst = (i0 + r) * n + j0;
                                out[dst..dst + nr].copy_from_slice(&trow[..nr]);
                            }
                        }
                    }
                }
                if last {
                    for i in ic..ic + mc {
                        epi.finish(i, jc, &mut out[i * n + jc..i * n + jc + nc]);
                    }
                }
            }
        }
    }
}

/// The `MR`×`NR` micro-kernel: accumulators live in registers, are seeded
/// from `c` when this is not the first `KC` block (continuing the per-element
/// ascending-`k` fold), and vectorize across the `NR` lanes.
#[inline]
fn kern_f32(kc: usize, apanel: &[f32], bpanel: &[f32], c: &mut [f32], ldc: usize, first: bool) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (r, row) in acc.iter_mut().enumerate() {
            row.copy_from_slice(&c[r * ldc..r * ldc + NR]);
        }
    }
    for p in 0..kc {
        let av: &[f32; MR] = apanel[p * MR..p * MR + MR].try_into().unwrap();
        let bv: &[f32; NR] = bpanel[p * NR..p * NR + NR].try_into().unwrap();
        for (row, &al) in acc.iter_mut().zip(av) {
            for (x, &bl) in row.iter_mut().zip(bv) {
                *x += al * bl;
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        c[r * ldc..r * ldc + NR].copy_from_slice(row);
    }
}

/// Packs `A[ic..ic+mc, pc..pc+kc]` into `MR`-row strips (`ap[strip][p][r]`),
/// zero-padding the ragged strip so the micro-kernel never branches.
#[allow(clippy::too_many_arguments)]
fn pack_a_f32(
    a: &[f32],
    layout: Layout,
    m: usize,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    ap: &mut [f32],
) {
    for (is, strip) in ap.chunks_mut(kc * MR).enumerate() {
        let i0 = ic + is * MR;
        let mr = MR.min(ic + mc - i0);
        if mr < MR {
            strip.fill(0.0);
        }
        match layout {
            Layout::RowMajor => {
                for r in 0..mr {
                    let arow = &a[(i0 + r) * k + pc..(i0 + r) * k + pc + kc];
                    for (p, &v) in arow.iter().enumerate() {
                        strip[p * MR + r] = v;
                    }
                }
            }
            Layout::Transposed => {
                for (p, dst) in strip.chunks_mut(MR).enumerate() {
                    let arow = &a[(pc + p) * m + i0..(pc + p) * m + i0 + mr];
                    dst[..mr].copy_from_slice(arow);
                }
            }
        }
    }
}

/// Packs `B[pc..pc+kc, jc..jc+nc]` into `NR`-column strips
/// (`bp[strip][p][c]`), zero-padding the ragged strip.
#[allow(clippy::too_many_arguments)]
fn pack_b_f32(
    b: &[f32],
    layout: Layout,
    n: usize,
    k: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    bp: &mut [f32],
) {
    for (js, strip) in bp.chunks_mut(kc * NR).enumerate() {
        let j0 = jc + js * NR;
        let nr = NR.min(jc + nc - j0);
        if nr < NR {
            strip.fill(0.0);
        }
        match layout {
            Layout::RowMajor => {
                for (p, dst) in strip.chunks_mut(NR).enumerate() {
                    let brow = &b[(pc + p) * n + j0..(pc + p) * n + j0 + nr];
                    dst[..nr].copy_from_slice(brow);
                }
            }
            Layout::Transposed => {
                for c in 0..nr {
                    let bcol = &b[(j0 + c) * k + pc..(j0 + c) * k + pc + kc];
                    for (p, &v) in bcol.iter().enumerate() {
                        strip[p * NR + c] = v;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// i8 core
// ---------------------------------------------------------------------------

/// Blocked `i8`×`i8`→`i32` GEMM: `acc[m,n] = A[m,k] · (B[k,n] - b_offset)`.
///
/// `A` (weights) is `[m, k]` row-major `i8` with no offset (symmetric weight
/// quantization). `B` (activations) carries the activation zero point, which
/// the pack step subtracts while widening to `i16`. `out` is never written by
/// the core itself — every finished accumulator row segment goes through
/// `epi`, which owns requantization and placement.
///
/// Integer accumulation is associative, so the result is exactly equal to a
/// naive triple loop regardless of blocking.
///
/// # Panics
///
/// Panics if an operand slice is shorter than its shape requires.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8<E: EpilogueI32>(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    b_layout: Layout,
    b_offset: i32,
    out: &mut [i8],
    epi: &mut E,
) {
    assert!(a.len() >= m * k, "gemm_i8: A shorter than m*k");
    assert!(b.len() >= k * n, "gemm_i8: B shorter than k*n");
    if m == 0 || n == 0 {
        return;
    }
    with_workspace(|ws| {
        ws.c_i32.clear();
        ws.c_i32.resize(m * n, 0);
        let mut scratch = std::mem::take(&mut ws.c_i32);
        if k == 0 {
            for i in 0..m {
                epi.row(i, 0, &scratch[i * n..(i + 1) * n], out);
            }
        } else if m * n * k <= SMALL_MNK {
            gemm_i8_small(m, n, k, a, b, b_layout, b_offset, &mut scratch);
            for i in 0..m {
                epi.row(i, 0, &scratch[i * n..(i + 1) * n], out);
            }
        } else {
            gemm_i8_blocked(
                m,
                n,
                k,
                a,
                b,
                b_layout,
                b_offset,
                out,
                &mut scratch,
                epi,
                ws,
            );
        }
        ws.c_i32 = scratch;
    });
}

#[allow(clippy::too_many_arguments)]
fn gemm_i8_small(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    b_layout: Layout,
    b_offset: i32,
    acc: &mut [i32],
) {
    for i in 0..m {
        let row = &mut acc[i * n..(i + 1) * n];
        for p in 0..k {
            let av = a[i * k + p] as i32;
            if av == 0 {
                continue; // exact for integers: skips the whole lane pass
            }
            match b_layout {
                Layout::RowMajor => {
                    for (o, &bv) in row.iter_mut().zip(&b[p * n..(p + 1) * n]) {
                        *o += av * (bv as i32 - b_offset);
                    }
                }
                Layout::Transposed => {
                    for (j, o) in row.iter_mut().enumerate() {
                        *o += av * (b[j * k + p] as i32 - b_offset);
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn gemm_i8_blocked<E: EpilogueI32>(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    b_layout: Layout,
    b_offset: i32,
    out: &mut [i8],
    scratch: &mut [i32],
    epi: &mut E,
    ws: &mut Workspace,
) {
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let n_strips = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let first = pc == 0;
            let last = pc + kc == k;
            ws.bp_i16.resize(n_strips * kc * NR, 0);
            pack_b_i16(b, b_layout, n, k, pc, kc, jc, nc, b_offset, &mut ws.bp_i16);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                let m_strips = mc.div_ceil(MR);
                ws.ap_i16.resize(m_strips * kc * MR, 0);
                pack_a_i16(a, k, ic, mc, pc, kc, &mut ws.ap_i16);
                for js in 0..n_strips {
                    let j0 = jc + js * NR;
                    let nr = NR.min(jc + nc - j0);
                    let bpanel = &ws.bp_i16[js * kc * NR..(js + 1) * kc * NR];
                    for is in 0..m_strips {
                        let i0 = ic + is * MR;
                        let mr = MR.min(ic + mc - i0);
                        let apanel = &ws.ap_i16[is * kc * MR..(is + 1) * kc * MR];
                        if mr == MR && nr == NR {
                            kern_i16(kc, apanel, bpanel, &mut scratch[i0 * n + j0..], n, first);
                        } else {
                            let mut tile = [0i32; MR * NR];
                            if !first {
                                for (r, trow) in tile.chunks_mut(NR).enumerate().take(mr) {
                                    let src = (i0 + r) * n + j0;
                                    trow[..nr].copy_from_slice(&scratch[src..src + nr]);
                                }
                            }
                            kern_i16(kc, apanel, bpanel, &mut tile, NR, first);
                            for (r, trow) in tile.chunks(NR).enumerate().take(mr) {
                                let dst = (i0 + r) * n + j0;
                                scratch[dst..dst + nr].copy_from_slice(&trow[..nr]);
                            }
                        }
                    }
                }
                if last {
                    for i in ic..ic + mc {
                        epi.row(i, jc, &scratch[i * n + jc..i * n + jc + nc], out);
                    }
                }
            }
        }
    }
}

#[inline]
fn kern_i16(kc: usize, apanel: &[i16], bpanel: &[i16], c: &mut [i32], ldc: usize, first: bool) {
    let mut acc = [[0i32; NR]; MR];
    if !first {
        for (r, row) in acc.iter_mut().enumerate() {
            row.copy_from_slice(&c[r * ldc..r * ldc + NR]);
        }
    }
    for p in 0..kc {
        let av: &[i16; MR] = apanel[p * MR..p * MR + MR].try_into().unwrap();
        let bv: &[i16; NR] = bpanel[p * NR..p * NR + NR].try_into().unwrap();
        for (row, &al) in acc.iter_mut().zip(av) {
            let al = al as i32;
            for (x, &bl) in row.iter_mut().zip(bv) {
                *x += al * bl as i32;
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        c[r * ldc..r * ldc + NR].copy_from_slice(row);
    }
}

/// Packs weights (`[m, k]` row-major `i8`) into `MR`-row `i16` strips.
fn pack_a_i16(a: &[i8], k: usize, ic: usize, mc: usize, pc: usize, kc: usize, ap: &mut [i16]) {
    for (is, strip) in ap.chunks_mut(kc * MR).enumerate() {
        let i0 = ic + is * MR;
        let mr = MR.min(ic + mc - i0);
        if mr < MR {
            strip.fill(0);
        }
        for r in 0..mr {
            let arow = &a[(i0 + r) * k + pc..(i0 + r) * k + pc + kc];
            for (p, &v) in arow.iter().enumerate() {
                strip[p * MR + r] = v as i16;
            }
        }
    }
}

/// Packs activations into `NR`-column `i16` strips, subtracting the zero
/// point while widening (`i8 - zp` always fits `i16`). Padding lanes hold 0
/// and therefore contribute nothing.
#[allow(clippy::too_many_arguments)]
fn pack_b_i16(
    b: &[i8],
    layout: Layout,
    n: usize,
    k: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    offset: i32,
    bp: &mut [i16],
) {
    let off = offset as i16;
    for (js, strip) in bp.chunks_mut(kc * NR).enumerate() {
        let j0 = jc + js * NR;
        let nr = NR.min(jc + nc - j0);
        if nr < NR {
            strip.fill(0);
        }
        match layout {
            Layout::RowMajor => {
                for (p, dst) in strip.chunks_mut(NR).enumerate() {
                    let brow = &b[(pc + p) * n + j0..(pc + p) * n + j0 + nr];
                    for (d, &v) in dst.iter_mut().zip(brow) {
                        *d = v as i16 - off;
                    }
                }
            }
            Layout::Transposed => {
                for c in 0..nr {
                    let bcol = &b[(j0 + c) * k + pc..(j0 + c) * k + pc + kc];
                    for (p, &v) in bcol.iter().enumerate() {
                        strip[p * NR + c] = v as i16 - off;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Naive references: the differential oracles for tests and benches.
// ---------------------------------------------------------------------------

/// Naive `f32` reference (`j`-inner ascending-`k` fold). Used by the
/// differential battery and the microbench catalog; never by production code.
pub fn naive_f32(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                let av = a_at(a, a_layout, m, k, i, p);
                let bv = match b_layout {
                    Layout::RowMajor => b[p * n + j],
                    Layout::Transposed => b[j * k + p],
                };
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Naive `i32`-accumulate reference for the int8 core. Returns the raw
/// accumulators (pre-epilogue); [`gemm_i8`] must match these **exactly**.
pub fn naive_i8_i32(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    b_layout: Layout,
    b_offset: i32,
) -> Vec<i32> {
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                let bv = match b_layout {
                    Layout::RowMajor => b[p * n + j],
                    Layout::Transposed => b[j * k + p],
                } as i32;
                acc += a[i * k + p] as i32 * (bv - b_offset);
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Epilogue that copies raw accumulators out (used by tests and benches to
/// observe pre-requantization sums through the public entry point).
pub struct CaptureAcc<'a> {
    /// Destination for the raw accumulators, `m*n` row-major.
    pub acc: &'a mut [i32],
    /// Output row length `n`.
    pub n: usize,
}

impl EpilogueI32 for CaptureAcc<'_> {
    fn row(&mut self, i: usize, j0: usize, acc: &[i32], _out: &mut [i8]) {
        self.acc[i * self.n + j0..i * self.n + j0 + acc.len()].copy_from_slice(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic value stream (SplitMix64) independent of `rand`.
    struct Mix(u64);

    impl Mix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        fn f32(&mut self) -> f32 {
            (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0
        }

        fn i8(&mut self) -> i8 {
            (self.next_u64() & 0xff) as u8 as i8
        }
    }

    #[test]
    fn blocked_matches_naive_f32_across_shapes_and_layouts() {
        let mut mix = Mix(7);
        for (m, n, k) in [(1, 1, 1), (5, 9, 3), (33, 65, 17), (64, 96, 300)] {
            let a: Vec<f32> = (0..m * k).map(|_| mix.f32()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| mix.f32()).collect();
            for al in [Layout::RowMajor, Layout::Transposed] {
                for bl in [Layout::RowMajor, Layout::Transposed] {
                    let want = naive_f32(m, n, k, &a, al, &b, bl);
                    let mut got = vec![0.0f32; m * n];
                    gemm_f32(m, n, k, &a, al, &b, bl, &mut got, &mut NoEpilogue);
                    for (g, w) in got.iter().zip(&want) {
                        assert!(
                            (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
                            "m={m} n={n} k={k} {al:?}/{bl:?}: {g} vs {w}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_f32_is_bitwise_ascending_k() {
        // The determinism contract: the blocked path equals the naive
        // ascending-k fold bit for bit, not just within tolerance.
        let mut mix = Mix(11);
        let (m, n, k) = (37, 41, 530); // several KC blocks, ragged tiles
        let a: Vec<f32> = (0..m * k).map(|_| mix.f32()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| mix.f32()).collect();
        let want = naive_f32(m, n, k, &a, Layout::RowMajor, &b, Layout::RowMajor);
        let mut got = vec![0.0f32; m * n];
        gemm_f32(
            m,
            n,
            k,
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            &mut got,
            &mut NoEpilogue,
        );
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn i8_matches_naive_exactly() {
        let mut mix = Mix(13);
        for (m, n, k) in [(1, 64, 9), (24, 256, 108), (7, 5, 1), (4, 1000, 600)] {
            let a: Vec<i8> = (0..m * k).map(|_| mix.i8()).collect();
            let b: Vec<i8> = (0..k * n).map(|_| mix.i8()).collect();
            for bl in [Layout::RowMajor, Layout::Transposed] {
                for off in [0i32, -7, 13] {
                    let want = naive_i8_i32(m, n, k, &a, &b, bl, off);
                    let mut got = vec![0i32; m * n];
                    let mut sink = vec![0i8; 0];
                    gemm_i8(
                        m,
                        n,
                        k,
                        &a,
                        &b,
                        bl,
                        off,
                        &mut sink,
                        &mut CaptureAcc { acc: &mut got, n },
                    );
                    assert_eq!(got, want, "m={m} n={n} k={k} {bl:?} off={off}");
                }
            }
        }
    }

    #[test]
    fn zero_sized_dims_are_no_ops() {
        let mut out = vec![7.0f32; 0];
        gemm_f32(
            0,
            4,
            3,
            &[],
            Layout::RowMajor,
            &[0.0; 12],
            Layout::RowMajor,
            &mut out,
            &mut NoEpilogue,
        );
        let mut out = vec![1.0f32; 6];
        // k = 0: output is all zeros (empty sum), epilogue still runs.
        gemm_f32(
            2,
            3,
            0,
            &[],
            Layout::RowMajor,
            &[],
            Layout::RowMajor,
            &mut out,
            &mut BiasRows(&[1.0, 2.0]),
        );
        assert_eq!(out, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn epilogue_sees_final_sums_once_per_segment() {
        struct CountRows<'a>(&'a mut Vec<(usize, usize, usize)>);
        impl EpilogueF32 for CountRows<'_> {
            fn finish(&mut self, i: usize, j0: usize, row: &mut [f32]) {
                self.0.push((i, j0, row.len()));
            }
        }
        let (m, n, k) = (9, 20, 700); // multiple KC blocks: epilogue must not repeat
        let a = vec![0.5f32; m * k];
        let b = vec![0.25f32; k * n];
        let mut out = vec![0.0f32; m * n];
        let mut calls = Vec::new();
        gemm_f32(
            m,
            n,
            k,
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            &mut out,
            &mut CountRows(&mut calls),
        );
        assert_eq!(calls.len(), m);
        assert!(calls.iter().all(|&(_, j0, len)| j0 == 0 && len == n));
    }
}
