//! `diva-tensor` — the dense-tensor substrate for the DIVA reproduction.
//!
//! Everything in the stack (the graph-IR network executor, the quantization
//! engine, the attacks) is built on the [`Tensor`] type defined here: a
//! row-major, heap-allocated `f32` array with an explicit shape.
//!
//! The crate provides the numeric kernels the paper's models need:
//!
//! * broadcasted elementwise arithmetic ([`Tensor::add`], [`Tensor::mul`], ...)
//! * matrix multiplication ([`ops::matmul`]), backed by the cache-blocked
//!   f32/int8 GEMM cores in [`gemm`]
//! * 2-D convolution via im2col ([`conv`]) plus depthwise convolution
//! * pooling ([`pool`])
//! * reductions and argmax/topk ([`Tensor::sum`], [`Tensor::argmax`], ...)
//! * random initialisation ([`init`])
//!
//! # Example
//!
//! ```
//! use diva_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::ones(&[2, 2]);
//! let c = a.add(&b);
//! assert_eq!(c.data(), &[2.0, 3.0, 4.0, 5.0]);
//! ```

pub mod conv;
pub mod gemm;
pub mod init;
pub mod ops;
pub mod packcache;
pub mod pool;
mod shape;
mod tensor;

pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide error type.
///
/// All fallible public operations return [`Result<T, TensorError>`]. Shape
/// mismatches are by far the most common failure and carry both shapes so the
/// message pinpoints the offending call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two tensors had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left / primary operand.
        lhs: Vec<usize>,
        /// Shape of the right / secondary operand (or requested shape).
        rhs: Vec<usize>,
    },
    /// A reshape asked for a different number of elements.
    BadReshape {
        /// Existing shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// An index was out of range for the tensor's shape.
    IndexOutOfRange {
        /// The offending index.
        index: Vec<usize>,
        /// Shape it was checked against.
        shape: Vec<usize>,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in `{op}`: {lhs:?} vs {rhs:?}")
            }
            TensorError::BadReshape { from, to } => {
                write!(
                    f,
                    "cannot reshape {from:?} into {to:?}: element counts differ"
                )
            }
            TensorError::IndexOutOfRange { index, shape } => {
                write!(f, "index {index:?} out of range for shape {shape:?}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience alias used across the crate.
pub type Result<T, E = TensorError> = std::result::Result<T, E>;
