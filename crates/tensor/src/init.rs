//! Deterministic random initialisation used across the model zoo.
//!
//! Every experiment in the reproduction threads an explicit seeded
//! [`StdRng`], so runs are bit-reproducible.

use rand::{rngs::StdRng, Rng};

use crate::Tensor;

/// Uniform initialisation in `[lo, hi)`.
pub fn uniform(rng: &mut StdRng, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(lo..hi)).collect(), dims)
}

/// Standard normal initialisation scaled by `std`.
pub fn normal(rng: &mut StdRng, dims: &[usize], std: f32) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|_| gauss(rng) * std).collect(), dims)
}

/// He (Kaiming) initialisation for ReLU networks: normal with
/// `std = sqrt(2 / fan_in)`.
///
/// `fan_in` is inferred from the shape: for a conv weight
/// `[co, ci, kh, kw]` it is `ci*kh*kw`; for a dense weight `[out, in]` it is
/// `in`; for a depthwise weight `[c, kh, kw]` it is `kh*kw`.
pub fn he(rng: &mut StdRng, dims: &[usize]) -> Tensor {
    let fan_in: usize = match dims.len() {
        4 => dims[1] * dims[2] * dims[3],
        3 => dims[1] * dims[2],
        2 => dims[1],
        _ => dims.iter().product(),
    };
    normal(rng, dims, (2.0 / fan_in.max(1) as f32).sqrt())
}

/// Box–Muller standard normal sample.
fn gauss(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(he(&mut a, &[4, 3, 3, 3]), he(&mut b, &[4, 3, 3, 3]));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&mut rng, &[1000], -0.5, 0.5);
        assert!(t.min() >= -0.5 && t.max() < 0.5);
    }

    #[test]
    fn he_scale_tracks_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        // Large fan-in => smaller spread. Compare empirical stds.
        let small_fan = he(&mut rng, &[64, 4]); // fan_in 4
        let large_fan = he(&mut rng, &[64, 400]); // fan_in 400
        let std = |t: &Tensor| {
            let m = t.mean();
            (t.map(|x| (x - m) * (x - m)).mean()).sqrt()
        };
        assert!(std(&small_fan) > 3.0 * std(&large_fan));
    }

    #[test]
    fn normal_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = normal(&mut rng, &[10_000], 1.0);
        assert!(t.mean().abs() < 0.05);
        let var = t.map(|x| x * x).mean();
        assert!((var - 1.0).abs() < 0.1);
    }
}
