//! The dense `f32` tensor type and its elementwise / reduction methods.

use serde::{Deserialize, Serialize};

use crate::{Result, Shape, TensorError};

/// A dense, row-major, heap-allocated `f32` tensor.
///
/// `Tensor` is the single numeric currency of the DIVA reproduction: model
/// parameters, activations, gradients, images, and adversarial perturbations
/// are all `Tensor`s. Elementwise binary operations broadcast their operands
/// under NumPy rules.
///
/// ```
/// use diva_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
/// assert_eq!(x.relu().data(), &[1.0, 0.0, 3.0]);
/// assert_eq!(x.abs().sum(), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Builds a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count; a raw
    /// length mismatch is always a programming error.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {:?}",
            data.len(),
            dims
        );
        Tensor { shape, data }
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.len()];
        Tensor { shape, data }
    }

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        Self::full(dims, 0.0)
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Zeros with the same shape as `self`.
    pub fn zeros_like(&self) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: vec![0.0; self.data.len()],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the raw buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfRange`] for a bad index.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Reshapes without copying data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadReshape`] if element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let new = Shape::new(dims);
        if new.len() != self.shape.len() {
            return Err(TensorError::BadReshape {
                from: self.shape.dims().to_vec(),
                to: dims.to_vec(),
            });
        }
        Ok(Tensor {
            shape: new,
            data: self.data.clone(),
        })
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Broadcasted binary operation.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible; use
    /// [`Tensor::try_zip`] for a fallible variant.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.try_zip(other, f)
            .expect("broadcast-incompatible shapes in Tensor::zip")
    }

    /// Broadcasted binary operation, fallible variant.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes do not broadcast.
    pub fn try_zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape == other.shape {
            // Fast path: identical shapes.
            let data = self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect();
            return Ok(Tensor {
                shape: self.shape.clone(),
                data,
            });
        }
        let out_shape = self.shape.broadcast(&other.shape)?;
        let mut out = Tensor::zeros(out_shape.dims());
        let a_idx = BroadcastIndexer::new(&self.shape, &out_shape);
        let b_idx = BroadcastIndexer::new(&other.shape, &out_shape);
        for (flat, slot) in out.data.iter_mut().enumerate() {
            *slot = f(self.data[a_idx.map(flat)], other.data[b_idx.map(flat)]);
        }
        Ok(out)
    }

    /// Elementwise (broadcasted) addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise (broadcasted) subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (broadcasted) multiplication.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise (broadcasted) division.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a / b)
    }

    /// Adds `other * scale` into `self` in place (shapes must match exactly).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, scale: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "axpy requires identical shapes: {} vs {}",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Elementwise max(x, 0).
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise sign (-1, 0, +1).
    pub fn signum(&self) -> Tensor {
        self.map(|x| {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Minimum element (+inf for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element (-inf for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element (first on ties); `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .fold(None, |best, (i, &x)| match best {
                Some((_, bx)) if bx >= x => best,
                _ => Some((i, x)),
            })
            .map(|(i, _)| i)
    }

    /// Indices of the `k` largest elements, in descending value order.
    pub fn topk(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.data.len()).collect();
        idx.sort_by(|&a, &b| {
            self.data[b]
                .partial_cmp(&self.data[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    }

    /// L2 norm of the flattened tensor.
    pub fn norm2(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// L1 norm of the flattened tensor.
    pub fn norm1(&self) -> f32 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// L∞ norm of the flattened tensor.
    pub fn norm_inf(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Sums along axis `axis`, removing that dimension.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        let dims = self.shape.dims();
        assert!(axis < dims.len(), "axis {axis} out of range");
        let out_dims: Vec<usize> = dims
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != axis)
            .map(|(_, &d)| d)
            .collect();
        let mut out = Tensor::zeros(&out_dims);
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        for o in 0..outer {
            for m in 0..mid {
                let src = (o * mid + m) * inner;
                let dst = o * inner;
                for i in 0..inner {
                    out.data[dst + i] += self.data[src + i];
                }
            }
        }
        out
    }

    /// Means along axis `axis`, removing that dimension.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let d = self.shape.dims()[axis].max(1) as f32;
        self.sum_axis(axis).scale(1.0 / d)
    }

    /// Extracts row `i` of a rank-2 tensor as a new rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or `i` is out of range.
    pub fn row(&self, i: usize) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        Tensor::from_vec(self.data[i * cols..(i + 1) * cols].to_vec(), &[cols])
    }

    /// Extracts sample `i` along the leading (batch) dimension.
    ///
    /// For a `[n, c, h, w]` tensor this returns `[c, h, w]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank-0 or `i` is out of range.
    pub fn index_batch(&self, i: usize) -> Tensor {
        assert!(self.shape.rank() >= 1, "index_batch() requires rank >= 1");
        let n = self.shape.dim(0);
        assert!(i < n, "batch index {i} out of range for batch size {n}");
        let rest: Vec<usize> = self.shape.dims()[1..].to_vec();
        let stride: usize = rest.iter().product();
        Tensor::from_vec(self.data[i * stride..(i + 1) * stride].to_vec(), &rest)
    }

    /// Stacks same-shaped tensors along a new leading batch dimension.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes differ.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "stack() of zero tensors");
        let inner = items[0].shape.clone();
        let mut data = Vec::with_capacity(items.len() * inner.len());
        for t in items {
            assert_eq!(t.shape, inner, "stack() requires identical shapes");
            data.extend_from_slice(&t.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(inner.dims());
        Tensor::from_vec(data, &dims)
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose() requires a rank-2 tensor");
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// True when every pair of elements differs by at most `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

/// Maps flat indices in a broadcast output back to a (smaller) operand.
struct BroadcastIndexer {
    /// For each output dimension: (output stride, operand stride or 0).
    dims: Vec<(usize, usize, usize)>, // (out_dim, out_stride, src_stride)
}

impl BroadcastIndexer {
    fn new(src: &Shape, out: &Shape) -> Self {
        let out_strides = out.strides();
        let src_strides = src.strides();
        let pad = out.rank() - src.rank();
        let dims = (0..out.rank())
            .map(|i| {
                let broadcasts = i < pad || (src.dim(i - pad) == 1 && out.dim(i) != 1);
                let src_stride = if broadcasts { 0 } else { src_strides[i - pad] };
                (out.dim(i), out_strides[i], src_stride)
            })
            .collect();
        BroadcastIndexer { dims }
    }

    fn map(&self, flat: usize) -> usize {
        let mut rem = flat;
        let mut src = 0;
        for &(dim, out_stride, src_stride) in &self.dims {
            let coord = (rem / out_stride) % dim;
            src += coord * src_stride;
            rem %= out_stride;
        }
        src
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]).unwrap(), 1.0);
        assert_eq!(t.at(&[1, 2]).unwrap(), 6.0);
        assert!(t.at(&[2, 0]).is_err());
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn elementwise_same_shape() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(b.div(&a).data(), &[3.0, 2.5]);
    }

    #[test]
    fn broadcast_row_and_scalar() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let row = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        let r = m.add(&row);
        assert_eq!(r.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);

        let col = Tensor::from_vec(vec![100.0, 200.0], &[2, 1]);
        let r = m.add(&col);
        assert_eq!(r.data(), &[101.0, 102.0, 103.0, 204.0, 205.0, 206.0]);

        let s = Tensor::scalar(1.0);
        assert_eq!(m.add(&s).data(), &[2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn broadcast_incompatible_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4]);
        assert!(a.try_zip(&b, |x, _| x).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 2.0 / 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.norm1(), 6.0);
        assert_eq!(t.norm_inf(), 3.0);
        assert!((t.norm2() - (14.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_and_topk() {
        let t = Tensor::from_vec(vec![0.1, 0.7, 0.3, 0.7], &[4]);
        assert_eq!(t.argmax(), Some(1)); // first on ties
        assert_eq!(t.topk(3), vec![1, 3, 2]);
        assert_eq!(Tensor::zeros(&[0]).argmax(), None);
    }

    #[test]
    fn reshape_checks_len() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(t.reshape(&[6]).is_ok());
        assert!(t.reshape(&[3, 2]).is_ok());
        assert!(t.reshape(&[4]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]).unwrap(), t.at(&[1, 2]).unwrap());
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn stack_and_index_batch() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.index_batch(0), a);
        assert_eq!(s.index_batch(1), b);
    }

    #[test]
    fn unary_ops() {
        let t = Tensor::from_vec(vec![-1.5, 0.0, 2.5], &[3]);
        assert_eq!(t.relu().data(), &[0.0, 0.0, 2.5]);
        assert_eq!(t.signum().data(), &[-1.0, 0.0, 1.0]);
        assert_eq!(t.clamp(-1.0, 1.0).data(), &[-1.0, 0.0, 1.0]);
        assert_eq!(t.abs().data(), &[1.5, 0.0, 2.5]);
    }

    #[test]
    fn sum_and_mean_axis() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]);
        let s0 = t.sum_axis(0);
        assert_eq!(s0.dims(), &[3, 4]);
        assert_eq!(s0.at(&[0, 0]).unwrap(), 0.0 + 12.0);
        let s1 = t.sum_axis(1);
        assert_eq!(s1.dims(), &[2, 4]);
        assert_eq!(s1.at(&[0, 0]).unwrap(), 0.0 + 4.0 + 8.0);
        let s2 = t.sum_axis(2);
        assert_eq!(s2.dims(), &[2, 3]);
        assert_eq!(s2.at(&[0, 0]).unwrap(), 0.0 + 1.0 + 2.0 + 3.0);
        let m2 = t.mean_axis(2);
        assert_eq!(m2.at(&[1, 2]).unwrap(), (20.0 + 21.0 + 22.0 + 23.0) / 4.0);
        // Total is preserved by any axis sum.
        assert_eq!(s0.sum(), t.sum());
        assert_eq!(s1.sum(), t.sum());
    }

    #[test]
    #[should_panic(expected = "axis 3 out of range")]
    fn sum_axis_bad_axis_panics() {
        let _ = Tensor::zeros(&[2, 2, 2]).sum_axis(3);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.axpy(-0.5, &g);
        assert_eq!(a.data(), &[0.5, 0.0, -0.5]);
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0005, 2.0], &[2]);
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-4));
        assert!(!a.allclose(&Tensor::zeros(&[3]), 1.0));
    }
}
