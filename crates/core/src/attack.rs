//! The attack zoo: the projected-ascent driver, the baselines (FGSM, PGD,
//! Momentum PGD, CW) and DIVA itself (Eq. 5/6), plus the targeted variant
//! from the face-recognition case study (§6).

use diva_nn::losses;
use diva_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

use crate::model::DiffModel;

/// Attack hyper-parameters (§5.1 "Attack construction").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackCfg {
    /// L∞ perturbation bound (the paper uses 8/255).
    pub eps: f32,
    /// Per-step size α (the paper uses 1/255).
    pub alpha: f32,
    /// Number of projected steps t (the paper uses 20).
    pub steps: usize,
    /// Momentum coefficient (0 = plain PGD; 0.5 = the paper's Momentum PGD).
    pub momentum: f32,
    /// Start from uniform noise in the ε-ball instead of the natural sample.
    /// The paper turns this off ("random start is less effective in a
    /// single run"); kept for the R+FGSM baseline and ablations.
    pub random_start: bool,
}

impl AttackCfg {
    /// The paper's setting: ε = 8/255, α = 1/255, t = 20, natural-sample
    /// initialisation ("We do not initialize the attack using random noise
    /// because random start is less effective in a single run").
    pub fn paper_default() -> Self {
        AttackCfg {
            eps: 8.0 / 255.0,
            alpha: 1.0 / 255.0,
            steps: 20,
            momentum: 0.0,
            random_start: false,
        }
    }

    /// Paper default with a different step count.
    pub fn with_steps(steps: usize) -> Self {
        AttackCfg {
            steps,
            ..AttackCfg::paper_default()
        }
    }
}

/// Per-step telemetry handed to the `on_step` hook of [`projected_ascent`].
#[derive(Debug)]
pub struct StepInfo<'a> {
    /// The adversarial batch after this step's projection.
    pub x: &'a Tensor,
    /// 1-based step index.
    pub step: usize,
    /// The attack objective value reported by the gradient function at the
    /// point where the gradient was taken (i.e. *before* this step's move).
    pub loss: f32,
    /// Fraction of pixels whose update direction sign matches the previous
    /// step's — a cheap proxy for how stable the ascent direction is. The
    /// first step has no predecessor and reports 1.0.
    pub grad_sign_agreement: f32,
}

/// Outcome of the divergence guard for the most recent [`projected_ascent`]
/// call on this thread (fetch with [`take_guard_report`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardReport {
    /// Times the guard rolled back to the last finite iterate.
    pub recoveries: usize,
    /// The recovery budget ran out: the returned image is the last finite
    /// iterate and the sample should be reported as failed.
    pub failed: bool,
}

/// How many rollbacks the divergence guard attempts before giving up on a
/// sample.
const RECOVERY_BUDGET: usize = 6;

thread_local! {
    static GUARD_REPORT: std::cell::Cell<GuardReport> =
        const { std::cell::Cell::new(GuardReport { recoveries: 0, failed: false }) };
}

/// Takes (and resets) the guard report left by the last
/// [`projected_ascent`] run on the calling thread.
pub fn take_guard_report() -> GuardReport {
    GUARD_REPORT.with(|c| c.take())
}

thread_local! {
    static TRACE_SCOPE: std::cell::RefCell<Option<(String, u64)>> =
        const { std::cell::RefCell::new(None) };
}

/// RAII label giving attack trace events a stable identity.
///
/// While held, `attack.step` events emitted by [`projected_ascent`] on this
/// thread (and the `attack.trajectory` events from
/// [`crate::par_attack_images`]) carry `attack` and `item` fields, so
/// offline tooling (diva-prof) can key trajectories by
/// `(attack, item, step)` — ids that depend only on the attack label and
/// the image's batch index, never on thread scheduling or `DIVA_JOBS`.
/// Scopes nest; dropping restores the previous scope.
pub struct TraceScope {
    prev: Option<(String, u64)>,
}

impl TraceScope {
    /// Labels this thread's attack events as `(attack, item)` until drop.
    pub fn enter(attack: &str, item: u64) -> TraceScope {
        let prev = TRACE_SCOPE.with(|s| s.replace(Some((attack.to_string(), item))));
        TraceScope { prev }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        TRACE_SCOPE.with(|s| *s.borrow_mut() = self.prev.take());
    }
}

/// The calling thread's current `(attack, item)` label, if any.
pub(crate) fn trace_scope() -> Option<(String, u64)> {
    TRACE_SCOPE.with(|s| s.borrow().clone())
}

/// The projected gradient-ascent driver shared by every attack (Eq. 3):
///
/// `x_{t+1} = Clip_{x,ε}( x_t + α · sign(g_t) )`
///
/// where `g_t` comes from `grad_fn` (optionally smoothed by an L1-normalised
/// momentum accumulator), and `Clip` projects both onto the ε-ball around
/// the natural image and onto the valid pixel domain `[0, 1]`.
///
/// `grad_fn` returns the objective value alongside its input gradient, so
/// per-step loss curves come for free (every concrete attack already
/// computes the value on the way to the gradient).
///
/// `on_step` is called after every step with a [`StepInfo`] — the hook used
/// to record success-vs-steps curves (Fig. 6d), first-flip steps, and the
/// `attack.step` trace events.
///
/// # Divergence guard
///
/// A non-finite loss or gradient (from numerical blow-up, or injected via
/// `diva-fault`) does not poison the trajectory: the driver rolls back to
/// the last finite iterate, halves the step size, and retries the step,
/// up to a fixed budget. When the budget runs out, the last finite iterate
/// is returned and the thread-local [`GuardReport`] is marked failed so
/// callers can record the sample as `failed` instead of trusting a
/// corrupted image.
pub fn projected_ascent(
    x_nat: &Tensor,
    cfg: &AttackCfg,
    mut grad_fn: impl FnMut(&Tensor) -> (f32, Tensor),
    mut on_step: impl FnMut(&StepInfo),
) -> Tensor {
    let _run = diva_trace::span(1, "attack.run");
    let mut x = x_nat.clone();
    let mut last_good = x.clone();
    let mut velocity = x_nat.zeros_like();
    let mut prev_sign: Option<Tensor> = None;
    let mut alpha = cfg.alpha;
    let mut report = GuardReport::default();
    // Whether this is the first attempt at the current step; a rollback
    // clears it so transient (non-sticky) injected faults fire only once.
    let mut fresh = true;
    let mut t = 1;
    while t <= cfg.steps {
        // Cooperative supervision point: a lapsed deadline or cancelled
        // token stops the trajectory between steps. The last finite iterate
        // is returned; the supervisor, not this loop, decides what the
        // partial result is worth.
        if let Some(reason) = diva_par::supervise::interrupted() {
            diva_trace::counter!("attack.interrupted", 1);
            diva_trace::event!(1, "attack.interrupted", step = t, reason = reason.name());
            break;
        }
        let _step = diva_trace::span(1, "attack.step");
        let (loss, mut g) = grad_fn(&x);
        if diva_fault::armed() {
            if let Some(poison) = diva_fault::grad_fault(t, fresh) {
                g.data_mut()[0] = poison;
            }
        }
        if !loss.is_finite() || g.data().iter().any(|v| !v.is_finite()) {
            report.recoveries += 1;
            diva_trace::counter!("attack.guard_recoveries", 1);
            diva_trace::event!(
                1,
                "attack.divergence",
                step = t,
                recoveries = report.recoveries,
                loss_finite = loss.is_finite(),
            );
            if report.recoveries > RECOVERY_BUDGET {
                report.failed = true;
                diva_trace::counter!("attack.guard_failures", 1);
                diva_trace::event!(1, "attack.guard_failed", step = t);
                x = last_good;
                break;
            }
            x = last_good.clone();
            alpha *= 0.5;
            fresh = false;
            continue;
        }
        fresh = true;
        let dir = if cfg.momentum > 0.0 {
            // Momentum PGD (Dong et al.): g/||g||_1 accumulated.
            let norm1 = g.norm1().max(1e-12);
            velocity = velocity.scale(cfg.momentum);
            velocity.axpy(1.0 / norm1, &g);
            velocity.clone()
        } else {
            g
        };
        let sign = dir.signum();
        let grad_sign_agreement = match &prev_sign {
            Some(prev) => {
                let same = sign
                    .data()
                    .iter()
                    .zip(prev.data())
                    .filter(|(a, b)| a == b)
                    .count();
                same as f32 / sign.data().len().max(1) as f32
            }
            None => 1.0,
        };
        x.axpy(alpha, &sign);
        x = clip_to_ball(&x, x_nat, cfg.eps);
        last_good = x.clone();
        diva_trace::counter!("attack.steps", 1);
        if diva_trace::enabled(2) {
            let mut fields = vec![
                ("step", diva_trace::Value::from(t)),
                ("loss", diva_trace::Value::from(loss)),
                (
                    "grad_sign_agreement",
                    diva_trace::Value::from(grad_sign_agreement),
                ),
            ];
            if let Some((attack, item)) = trace_scope() {
                fields.push(("attack", diva_trace::Value::from(attack)));
                fields.push(("item", diva_trace::Value::from(item)));
            }
            diva_trace::event_at(2, "attack.step", &fields);
        }
        on_step(&StepInfo {
            x: &x,
            step: t,
            loss,
            grad_sign_agreement,
        });
        prev_sign = Some(sign);
        t += 1;
    }
    GUARD_REPORT.with(|c| c.set(report));
    x
}

/// Projects `x` onto the L∞ ε-ball around `x_nat` intersected with `[0,1]`.
pub fn clip_to_ball(x: &Tensor, x_nat: &Tensor, eps: f32) -> Tensor {
    x.zip(x_nat, |xi, ni| xi.clamp(ni - eps, ni + eps).clamp(0.0, 1.0))
}

/// Maximum L∞ deviation of `x` from `x_nat` — used in tests and harnesses
/// to assert the perturbation budget is honoured.
pub fn linf_distance(x: &Tensor, x_nat: &Tensor) -> f32 {
    x.sub(x_nat).norm_inf()
}

/// The PGD baseline (Madry et al.): ascend the cross-entropy of the target
/// model (the paper targets the *adapted* model).
///
/// # Panics
///
/// Panics if `cfg.random_start` is set — randomized starts need an explicit
/// RNG; use [`pgd_attack_with_rng`].
pub fn pgd_attack<M: DiffModel + ?Sized>(
    target: &M,
    x_nat: &Tensor,
    labels: &[usize],
    cfg: &AttackCfg,
) -> Tensor {
    assert!(
        !cfg.random_start,
        "random_start requires pgd_attack_with_rng"
    );
    pgd_attack_traced(target, x_nat, labels, cfg, |_| {})
}

/// [`pgd_attack`] with a per-step hook.
///
/// # Panics
///
/// Panics if `cfg.random_start` is set (see [`pgd_attack`]).
pub fn pgd_attack_traced<M: DiffModel + ?Sized>(
    target: &M,
    x_nat: &Tensor,
    labels: &[usize],
    cfg: &AttackCfg,
    on_step: impl FnMut(&StepInfo),
) -> Tensor {
    assert!(
        !cfg.random_start,
        "random_start requires pgd_attack_with_rng"
    );
    projected_ascent(x_nat, cfg, ce_grad_fn(target, labels), on_step)
}

/// Gradient function for cross-entropy ascent: returns the batch loss and
/// its input gradient. The loss value is captured from inside the logits
/// closure, where `cross_entropy` computes it anyway.
fn ce_grad_fn<'a, M: DiffModel + ?Sized>(
    target: &'a M,
    labels: &'a [usize],
) -> impl FnMut(&Tensor) -> (f32, Tensor) + 'a {
    move |x| {
        let mut loss = 0.0f32;
        let (_, g) = target.value_and_grad(x, &mut |l| {
            let (v, d) = losses::cross_entropy(l, labels);
            loss = v;
            d
        });
        (loss, g)
    }
}

/// PGD with an explicit RNG, honouring `cfg.random_start`.
pub fn pgd_attack_with_rng<M: DiffModel + ?Sized>(
    target: &M,
    x_nat: &Tensor,
    labels: &[usize],
    cfg: &AttackCfg,
    rng: &mut StdRng,
) -> Tensor {
    let start = if cfg.random_start {
        random_start(x_nat, cfg.eps, rng)
    } else {
        x_nat.clone()
    };
    let mut det = *cfg;
    det.random_start = false;
    let moved = projected_ascent(&start, &det, ce_grad_fn(target, labels), |_| {});
    // Project against the *natural* sample: the start offset must not widen
    // the budget.
    clip_to_ball(&moved, x_nat, cfg.eps)
}

/// FGSM (Goodfellow et al., Eq. 2): a single signed-gradient step of size ε.
pub fn fgsm_attack<M: DiffModel + ?Sized>(
    target: &M,
    x_nat: &Tensor,
    labels: &[usize],
    eps: f32,
) -> Tensor {
    let cfg = AttackCfg {
        eps,
        alpha: eps,
        steps: 1,
        momentum: 0.0,
        random_start: false,
    };
    pgd_attack(target, x_nat, labels, &cfg)
}

/// R+FGSM (Tramèr et al., §2.2): a random half-ε start followed by one
/// signed-gradient step, projected back to the ε-ball.
pub fn r_fgsm_attack<M: DiffModel + ?Sized>(
    target: &M,
    x_nat: &Tensor,
    labels: &[usize],
    eps: f32,
    rng: &mut StdRng,
) -> Tensor {
    let noisy = random_start(x_nat, eps / 2.0, rng);
    let (_, g) = target.value_and_grad(&noisy, &mut |l| losses::cross_entropy(l, labels).1);
    let mut x = noisy;
    x.axpy(eps / 2.0, &g.signum());
    clip_to_ball(&x, x_nat, eps)
}

/// Uniform random point in the intersection of the ε-ball around `x_nat`
/// and the pixel domain.
pub fn random_start(x_nat: &Tensor, eps: f32, rng: &mut StdRng) -> Tensor {
    let data = x_nat
        .data()
        .iter()
        .map(|&v| (v + rng.gen_range(-eps..=eps)).clamp(0.0, 1.0))
        .collect();
    Tensor::from_vec(data, x_nat.dims())
}

/// Momentum PGD (Dong et al.) with the paper's μ = 0.5 (§5.4).
pub fn momentum_pgd_attack<M: DiffModel + ?Sized>(
    target: &M,
    x_nat: &Tensor,
    labels: &[usize],
    cfg: &AttackCfg,
) -> Tensor {
    momentum_pgd_attack_traced(target, x_nat, labels, cfg, |_| {})
}

/// [`momentum_pgd_attack`] with a per-step hook.
pub fn momentum_pgd_attack_traced<M: DiffModel + ?Sized>(
    target: &M,
    x_nat: &Tensor,
    labels: &[usize],
    cfg: &AttackCfg,
    on_step: impl FnMut(&StepInfo),
) -> Tensor {
    let cfg = AttackCfg {
        momentum: 0.5,
        random_start: false,
        ..*cfg
    };
    pgd_attack_traced(target, x_nat, labels, &cfg, on_step)
}

/// The L∞ CW attack in the Madry formulation (§5.4): PGD steps on the
/// negated CW margin `−max(z_y − max_{j≠y} z_j, −κ)` with κ = 0.
pub fn cw_attack<M: DiffModel + ?Sized>(
    target: &M,
    x_nat: &Tensor,
    labels: &[usize],
    cfg: &AttackCfg,
) -> Tensor {
    cw_attack_traced(target, x_nat, labels, cfg, |_| {})
}

/// [`cw_attack`] with a per-step hook.
pub fn cw_attack_traced<M: DiffModel + ?Sized>(
    target: &M,
    x_nat: &Tensor,
    labels: &[usize],
    cfg: &AttackCfg,
    on_step: impl FnMut(&StepInfo),
) -> Tensor {
    projected_ascent(
        x_nat,
        cfg,
        |x| {
            // Ascend -margin == descend margin.
            let mut margin = 0.0f32;
            let (_, g) = target.value_and_grad(x, &mut |l| {
                let (v, d) = losses::cw_margin(l, labels, 0.0);
                margin = v;
                d.scale(-1.0)
            });
            (-margin, g)
        },
        on_step,
    )
}

/// **The DIVA attack** (Eq. 5/6): ascend
/// `L = p_orig(x)[y] − c · p_adapted(x)[y]`
/// so the original model keeps (or gains) confidence in the true label while
/// the adapted model loses it.
pub fn diva_attack<O: DiffModel + ?Sized, A: DiffModel + ?Sized>(
    original: &O,
    adapted: &A,
    x_nat: &Tensor,
    labels: &[usize],
    c: f32,
    cfg: &AttackCfg,
) -> Tensor {
    diva_attack_traced(original, adapted, x_nat, labels, c, cfg, |_| {})
}

/// [`diva_attack`] with a per-step hook (Fig. 6d's success-vs-steps curve,
/// first-flip tracking, trace events).
pub fn diva_attack_traced<O: DiffModel + ?Sized, A: DiffModel + ?Sized>(
    original: &O,
    adapted: &A,
    x_nat: &Tensor,
    labels: &[usize],
    c: f32,
    cfg: &AttackCfg,
    on_step: impl FnMut(&StepInfo),
) -> Tensor {
    projected_ascent(
        x_nat,
        cfg,
        |x| diva_grad_with_loss(original, adapted, x, labels, c),
        on_step,
    )
}

/// One evaluation of (L_DIVA, ∇ₓ L_DIVA). The loss comes from the same
/// softmax evaluations that produce the gradient, so monitoring it is free.
pub fn diva_grad_with_loss<O: DiffModel + ?Sized, A: DiffModel + ?Sized>(
    original: &O,
    adapted: &A,
    x: &Tensor,
    labels: &[usize],
    c: f32,
) -> (f32, Tensor) {
    // d/dx p_orig[y]
    let mut p_orig = 0.0f32;
    let (_, g_orig) = original.value_and_grad(x, &mut |l| {
        let (p, d) = losses::prob_of_label_grad(l, labels);
        p_orig = p;
        d
    });
    // d/dx p_adapted[y]
    let mut p_adapted = 0.0f32;
    let (_, g_adapted) = adapted.value_and_grad(x, &mut |l| {
        let (p, d) = losses::prob_of_label_grad(l, labels);
        p_adapted = p;
        d
    });
    let mut g = g_orig;
    g.axpy(-c, &g_adapted);
    (p_orig - c * p_adapted, g)
}

/// One evaluation of ∇ₓ L_DIVA.
pub fn diva_grad<O: DiffModel + ?Sized, A: DiffModel + ?Sized>(
    original: &O,
    adapted: &A,
    x: &Tensor,
    labels: &[usize],
    c: f32,
) -> Tensor {
    diva_grad_with_loss(original, adapted, x, labels, c).1
}

/// The scalar DIVA loss at `x` (useful for monitoring / tests).
pub fn diva_loss<O: DiffModel + ?Sized, A: DiffModel + ?Sized>(
    original: &O,
    adapted: &A,
    x: &Tensor,
    labels: &[usize],
    c: f32,
) -> f32 {
    let lo = original.logits(x);
    let la = adapted.logits(x);
    let (po, _) = losses::prob_of_label_grad(&lo, labels);
    let (pa, _) = losses::prob_of_label_grad(&la, labels);
    po - c * pa
}

/// Targeted DIVA (§6): in addition to the evasive objective, pull the
/// adapted model toward a chosen `target` class by penalising the distance
/// between its softmax and the target's one-hot vector.
///
/// `target_weight` scales the extra term.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameterisation
pub fn diva_targeted_attack<O: DiffModel + ?Sized, A: DiffModel + ?Sized>(
    original: &O,
    adapted: &A,
    x_nat: &Tensor,
    labels: &[usize],
    target: usize,
    c: f32,
    target_weight: f32,
    cfg: &AttackCfg,
) -> Tensor {
    projected_ascent(
        x_nat,
        cfg,
        |x| {
            let (base_loss, mut g) = diva_grad_with_loss(original, adapted, x, labels, c);
            // Ascend -distance(softmax_adapted, onehot_target).
            let mut dist = 0.0f32;
            let (_, g_t) = adapted.value_and_grad(x, &mut |l| {
                let (v, d) = losses::onehot_distance(l, target);
                dist = v;
                d.scale(-1.0)
            });
            g.axpy(target_weight, &g_t);
            (base_loss - target_weight * dist, g)
        },
        |_| {},
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_models::{Architecture, ModelCfg};
    use diva_nn::{Infer, Network};
    use diva_quant::{QatNetwork, QuantCfg};
    use rand::SeedableRng;

    fn rand_images(rng: &mut StdRng, n: usize, dims: &[usize]) -> Tensor {
        let per: usize = dims.iter().product();
        let samples: Vec<Tensor> = (0..n)
            .map(|_| Tensor::from_vec((0..per).map(|_| rng.gen_range(0.2..0.8)).collect(), dims))
            .collect();
        Tensor::stack(&samples)
    }

    fn setup() -> (Network, QatNetwork, Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Architecture::ResNet.build(&ModelCfg::tiny(4), &mut rng);
        let images = rand_images(&mut rng, 24, &[3, 8, 8]);
        let mut qat = QatNetwork::new(net.clone(), QuantCfg::default());
        qat.calibrate(&images);
        let x = diva_nn::train::gather(&images, &[0, 1, 2, 3]);
        // Use the fp32 model's own predictions as "labels" so the attack has
        // something to destroy.
        let labels = net.predict(&x);
        (net, qat, x, labels)
    }

    #[test]
    fn perturbations_respect_eps_and_domain() {
        let (net, qat, x, labels) = setup();
        let cfg = AttackCfg::paper_default();
        for adv in [
            pgd_attack(&qat, &x, &labels, &cfg),
            fgsm_attack(&qat, &x, &labels, cfg.eps),
            momentum_pgd_attack(&qat, &x, &labels, &cfg),
            cw_attack(&qat, &x, &labels, &cfg),
            diva_attack(&net, &qat, &x, &labels, 1.0, &cfg),
        ] {
            assert!(linf_distance(&adv, &x) <= cfg.eps + 1e-6);
            assert!(adv.min() >= 0.0 && adv.max() <= 1.0);
            assert!(linf_distance(&adv, &x) > 0.0, "attack did nothing");
        }
    }

    #[test]
    fn pgd_increases_cross_entropy() {
        let (_, qat, x, labels) = setup();
        let cfg = AttackCfg::paper_default();
        let before = losses::cross_entropy(&qat.logits(&x), &labels).0;
        let adv = pgd_attack(&qat, &x, &labels, &cfg);
        let after = losses::cross_entropy(&qat.logits(&adv), &labels).0;
        assert!(
            after > before,
            "PGD failed to increase the loss: {before} -> {after}"
        );
    }

    #[test]
    fn diva_increases_its_own_loss() {
        let (net, qat, x, labels) = setup();
        let cfg = AttackCfg::paper_default();
        let before = diva_loss(&net, &qat, &x, &labels, 1.0);
        let adv = diva_attack(&net, &qat, &x, &labels, 1.0, &cfg);
        let after = diva_loss(&net, &qat, &adv, &labels, 1.0);
        assert!(
            after > before,
            "DIVA failed to increase its loss: {before} -> {after}"
        );
    }

    #[test]
    fn projected_ascent_invokes_hook_each_step() {
        let (_, qat, x, labels) = setup();
        let cfg = AttackCfg::with_steps(7);
        let mut seen = Vec::new();
        let mut agreements = Vec::new();
        let _ = diva_attack_traced(&qat, &qat, &x, &labels, 1.0, &cfg, |info| {
            seen.push(info.step);
            agreements.push(info.grad_sign_agreement);
        });
        assert_eq!(seen, (1..=7).collect::<Vec<_>>());
        assert_eq!(agreements[0], 1.0, "first step has no predecessor");
        assert!(
            agreements.iter().all(|a| (0.0..=1.0).contains(a)),
            "agreement is a fraction: {agreements:?}"
        );
    }

    #[test]
    fn divergence_guard_recovers_then_fails_when_sticky() {
        let _lock = diva_fault::test_lock();
        let (_, qat, x, labels) = setup();
        let cfg = AttackCfg::with_steps(6);
        // Scope the injected faults to a synthetic item id so concurrently
        // running tests (which never enter item 777) are unaffected.
        let _scope = diva_fault::ItemScope::enter(777);

        // Transient poison at step 3: one rollback, then the retry is clean.
        let plan = diva_fault::FaultPlan::parse("grad-nan:step=3,item=777").unwrap();
        diva_fault::set_plan(Some(plan));
        let mut steps = Vec::new();
        let adv = pgd_attack_traced(&qat, &x, &labels, &cfg, |info| steps.push(info.step));
        let rep = take_guard_report();
        assert_eq!(rep.recoveries, 1);
        assert!(!rep.failed);
        assert_eq!(steps, (1..=6).collect::<Vec<_>>(), "all steps completed");
        assert!(linf_distance(&adv, &x) <= cfg.eps + 1e-6);

        // Sticky poison refires on every retry: the budget runs out and the
        // sample is marked failed, but the output is still a finite iterate
        // inside the budget ball.
        let plan = diva_fault::FaultPlan::parse("grad-inf:step=2,item=777,sticky=1").unwrap();
        diva_fault::set_plan(Some(plan));
        let adv = pgd_attack_traced(&qat, &x, &labels, &cfg, |_| {});
        diva_fault::set_plan(None);
        let rep = take_guard_report();
        assert!(rep.failed);
        assert!(rep.recoveries > 1);
        assert!(adv.data().iter().all(|v| v.is_finite()));
        assert!(linf_distance(&adv, &x) <= cfg.eps + 1e-6);
    }

    #[test]
    fn guard_handles_natural_nan_loss() {
        // No fault plan at all: a grad_fn that genuinely returns NaN on one
        // step must be recovered from by the always-on finiteness scan.
        let x = Tensor::full(&[1, 1, 2, 2], 0.5);
        let mut calls = 0usize;
        let adv = projected_ascent(
            &x,
            &AttackCfg::with_steps(3),
            |xi| {
                calls += 1;
                if calls == 2 {
                    (f32::NAN, xi.zeros_like())
                } else {
                    (0.0, xi.zeros_like().add_scalar(1.0))
                }
            },
            |_| {},
        );
        let rep = take_guard_report();
        assert_eq!(rep.recoveries, 1);
        assert!(!rep.failed);
        assert!(adv.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn random_start_and_rfgsm_respect_budget() {
        let (_, qat, x, labels) = setup();
        let mut rng = StdRng::seed_from_u64(99);
        let eps = 8.0 / 255.0;
        let start = random_start(&x, eps, &mut rng);
        assert!(linf_distance(&start, &x) <= eps + 1e-6);
        assert!(start.min() >= 0.0 && start.max() <= 1.0);
        assert_ne!(start, x);

        let adv = r_fgsm_attack(&qat, &x, &labels, eps, &mut rng);
        assert!(linf_distance(&adv, &x) <= eps + 1e-6);
        assert!(adv.min() >= 0.0 && adv.max() <= 1.0);

        let cfg = AttackCfg {
            random_start: true,
            steps: 3,
            ..AttackCfg::paper_default()
        };
        let adv = pgd_attack_with_rng(&qat, &x, &labels, &cfg, &mut rng);
        assert!(linf_distance(&adv, &x) <= cfg.eps + 1e-6);
    }

    #[test]
    #[should_panic(expected = "random_start requires")]
    fn deterministic_pgd_rejects_random_start() {
        let (_, qat, x, labels) = setup();
        let cfg = AttackCfg {
            random_start: true,
            ..AttackCfg::paper_default()
        };
        let _ = pgd_attack(&qat, &x, &labels, &cfg);
    }

    #[test]
    fn zero_steps_returns_natural_image() {
        let (net, qat, x, labels) = setup();
        let cfg = AttackCfg::with_steps(0);
        let adv = diva_attack(&net, &qat, &x, &labels, 1.0, &cfg);
        assert_eq!(adv, x);
    }

    #[test]
    fn clip_to_ball_projects_both_constraints() {
        let nat = Tensor::from_vec(vec![0.0, 0.5, 1.0], &[3]);
        let x = Tensor::from_vec(vec![0.5, 0.45, 2.0], &[3]);
        let clipped = clip_to_ball(&x, &nat, 0.1);
        assert_eq!(clipped.data(), &[0.1, 0.45, 1.0]);
    }

    #[test]
    fn momentum_accumulator_changes_trajectory() {
        let (_, qat, x, labels) = setup();
        let plain = pgd_attack(&qat, &x, &labels, &AttackCfg::paper_default());
        let with_mom = momentum_pgd_attack(&qat, &x, &labels, &AttackCfg::paper_default());
        assert_ne!(plain, with_mom);
    }

    #[test]
    fn cw_reduces_margin() {
        let (_, qat, x, labels) = setup();
        let cfg = AttackCfg::paper_default();
        let before = losses::cw_margin(&qat.logits(&x), &labels, 0.0).0;
        let adv = cw_attack(&qat, &x, &labels, &cfg);
        let after = losses::cw_margin(&qat.logits(&adv), &labels, 0.0).0;
        assert!(after < before, "CW did not reduce the margin");
    }

    #[test]
    fn targeted_attack_raises_target_probability() {
        let (net, qat, x, labels) = setup();
        let cfg = AttackCfg::with_steps(30);
        // Pick a target different from every label.
        let target = (0..4).find(|t| !labels.contains(t)).unwrap_or(0);
        let before = diva_tensor::ops::softmax_rows(&qat.logits(&x));
        let adv = diva_targeted_attack(&net, &qat, &x, &labels, target, 1.0, 4.0, &cfg);
        let after = diva_tensor::ops::softmax_rows(&qat.logits(&adv));
        let c = 4;
        let mean_before: f32 = (0..x.dims()[0])
            .map(|i| before.data()[i * c + target])
            .sum::<f32>()
            / 4.0;
        let mean_after: f32 = (0..x.dims()[0])
            .map(|i| after.data()[i * c + target])
            .sum::<f32>()
            / 4.0;
        assert!(
            mean_after > mean_before,
            "target prob did not rise: {mean_before} -> {mean_after}"
        );
    }
}
