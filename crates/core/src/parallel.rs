//! Deterministic per-image parallel attack generation.
//!
//! DIVA's workload (PAPER.md §4) is per-image: each adversarial example is
//! a projected-ascent trajectory that depends only on its own natural image
//! and label. [`par_attack_images`] fans those trajectories out across
//! diva-par workers and merges them back in fixed image order, so the
//! stacked adversarial batch, first-flip annotations, and trace counter
//! totals are identical for every `DIVA_JOBS` setting — including `1`,
//! which runs the exact serial loop.
//!
//! Per-image generation is also *semantically* cleaner than the historical
//! whole-batch loop: batch-mean losses scale every image's gradient by the
//! same positive `1/n`, so sign-based steps (PGD, CW, DIVA) take identical
//! trajectories either way, while batch-coupled normalizations (momentum
//! PGD's L1 rescale) now see each image on its own, matching the paper's
//! single-image formulation.
//!
//! The fan-out runs under diva-par's supervision layer
//! ([`par_attack_images_supervised`]): per-image deadlines, cancellation,
//! retry/backoff, and per-item checkpoints all apply at this granularity,
//! and every image comes back with an explicit [`JobStatus`]. Non-`Ok`
//! slots carry the *natural* image (a failed attack is a no-op attack), so
//! downstream evaluation stays shape-stable while the report is honest.

use diva_fault::ckpt::ItemStore;
use diva_nn::train::gather;
use diva_nn::Infer;
use diva_par::supervise::{self, JobStatus, SupervisePolicy};
use diva_tensor::Tensor;

use crate::attack::{take_guard_report, StepInfo};
use crate::pipeline::FirstFlipTracker;

/// Merged result of a per-image attack fan-out.
#[derive(Debug, Clone)]
pub struct ParAttackOutput {
    /// Adversarial batch, stacked in the natural images' order.
    pub adv: Tensor,
    /// Per-image earliest step at which the watched model's prediction left
    /// its clean label (`None` = never flipped, or no watch model).
    pub first_flips: Vec<Option<usize>>,
    /// Whether a watch model observed the trajectories (i.e. whether
    /// `first_flips` carries information).
    pub tracked: bool,
    /// Per-image terminal status. Non-`Ok` slots (worker panic or guard
    /// budget exhaustion → `Failed`/`Quarantined`, deadline → `TimedOut`,
    /// cancellation → `Cancelled`) carry the untouched natural image in
    /// `adv` so the batch stays whole; `SuccessCounts` buckets them
    /// explicitly instead of scoring them.
    pub statuses: Vec<JobStatus>,
}

/// Generates one adversarial example per image of `x_nat`, in parallel.
///
/// `kind` is a stable attack label (`"PGD"`, `"DIVA (whitebox)"`, ...): each
/// trajectory runs inside a [`crate::attack::TraceScope`]`(kind, i)`, so at
/// `DIVA_TRACE=2` its `attack.step` events are attributed to
/// `(attack, item)` and one `attack.trajectory` event summarises the image
/// (first-flip step, guard outcome) — the raw material for diva-prof's
/// convergence analytics.
///
/// `attack` is invoked once per image with `(index, single-image batch,
/// single-label slice, step hook)` and must return the adversarial
/// single-image batch; it sees the same 1-image tensors a serial per-image
/// loop would, so any `*_attack_traced` driver slots in directly. When
/// `watch` is `Some`, each image gets its own [`FirstFlipTracker`] against
/// that model, fed from the attack's step hook — this is the per-step
/// inference cost that callers usually gate on `diva_trace::enabled(1)`.
///
/// Supervision comes from the environment ([`SupervisePolicy::from_env`]:
/// `DIVA_DEADLINE_MS`, `DIVA_RETRY`, `DIVA_BACKOFF_MS`); with none of those
/// set the policy is inert and this is exactly the historical unsupervised
/// fan-out. No per-item checkpoint store is attached — the bench suite
/// wires one via [`par_attack_images_supervised`].
///
/// Determinism: results are merged in image order and each trajectory
/// depends only on its own index, so the output is bit-identical for every
/// worker count.
pub fn par_attack_images<W, F>(
    kind: &str,
    x_nat: &Tensor,
    labels: &[usize],
    watch: Option<&W>,
    attack: F,
) -> ParAttackOutput
where
    W: Infer + Sync + ?Sized,
    F: Fn(usize, &Tensor, &[usize], &mut dyn FnMut(&StepInfo)) -> Tensor + Sync,
{
    par_attack_images_supervised(
        kind,
        x_nat,
        labels,
        watch,
        &SupervisePolicy::from_env(),
        None,
        attack,
    )
}

/// [`par_attack_images`] with an explicit supervision policy and an
/// optional per-item checkpoint store.
///
/// When `store` is `Some`, each image that completes cleanly is persisted
/// (fingerprint-prefixed, atomically) and a later run over the same inputs
/// resumes it from disk instead of recomputing — item-granularity resume
/// for cancelled or killed attack-matrix runs. Stopped items are *not*
/// stored: a partial trajectory must never masquerade as a finished one.
pub fn par_attack_images_supervised<W, F>(
    kind: &str,
    x_nat: &Tensor,
    labels: &[usize],
    watch: Option<&W>,
    policy: &SupervisePolicy,
    store: Option<&ItemStore>,
    attack: F,
) -> ParAttackOutput
where
    W: Infer + Sync + ?Sized,
    F: Fn(usize, &Tensor, &[usize], &mut dyn FnMut(&StepInfo)) -> Tensor + Sync,
{
    let n = x_nat.dims()[0];
    assert_eq!(labels.len(), n, "labels/batch mismatch");
    let _span = diva_trace::span(1, "attack.par_images");
    let reports = supervise::par_map_supervised(n, policy, |i| {
        let _scope = diva_fault::ItemScope::enter(i);
        let _tscope = crate::attack::TraceScope::enter(kind, i as u64);
        if let Some(store) = store {
            if let Some(payload) = store.load(i) {
                if let Some((sample, flip)) = decode_item(&payload) {
                    diva_trace::counter!("job.items_resumed", 1);
                    diva_trace::event!(1, "job.item_resumed", attack = kind, item = i);
                    return Ok((sample, flip));
                }
            }
        }
        diva_fault::maybe_panic(i);
        if let Some(d) = diva_fault::stall_duration(i) {
            // Injected worker stall: wedge in token-only polling code so
            // the watchdog — not this closure — has to break the stall.
            supervise::cooperative_stall(d);
        }
        let xi = gather(x_nat, &[i]);
        let yi = [labels[i]];
        let mut tracker = watch.map(|m| FirstFlipTracker::new(m, &xi));
        let adv_i = {
            let mut hook = |info: &StepInfo| {
                if let (Some(t), Some(m)) = (tracker.as_mut(), watch) {
                    t.observe(m, info);
                }
            };
            attack(i, &xi, &yi, &mut hook)
        };
        let flip = tracker.and_then(|t| t.first_flips()[0]);
        let report = take_guard_report();
        diva_trace::event!(
            2,
            "attack.trajectory",
            attack = kind,
            item = i,
            first_flip = flip.map(|s| s as i64).unwrap_or(-1),
            failed = report.failed,
        );
        if report.failed {
            return Err(format!(
                "divergence guard budget exhausted after {} recoveries",
                report.recoveries
            ));
        }
        let sample = adv_i.index_batch(0);
        if let Some(store) = store {
            if supervise::stop_observed().is_none() {
                store.store(i, &encode_item(&sample, flip));
            }
        }
        Ok((sample, flip))
    });
    let mut samples = Vec::with_capacity(n);
    let mut first_flips = Vec::with_capacity(n);
    let mut statuses = Vec::with_capacity(n);
    for (i, report) in reports.into_iter().enumerate() {
        match (report.status, report.value) {
            (JobStatus::Ok, Some((sample, flip))) => {
                samples.push(sample);
                first_flips.push(flip);
                statuses.push(JobStatus::Ok);
            }
            (status, _) => {
                // Keep the batch whole with the untouched natural image;
                // partial values from stopped items are deliberately
                // discarded — a half-run trajectory is not an attack.
                samples.push(x_nat.index_batch(i));
                first_flips.push(None);
                statuses.push(status);
                diva_trace::event!(
                    1,
                    "attack.image_failed",
                    item = i,
                    status = status.name(),
                    message = report.error.unwrap_or_default(),
                );
            }
        }
    }
    let n_failed = statuses.iter().filter(|s| !s.is_ok()).count();
    if n_failed > 0 {
        diva_trace::counter!("attack.failed_images", n_failed as u64);
    }
    // Teardown under a graceful drain (e.g. diva-serve shutting down while
    // an attack batch is in flight): the fan-out above has returned, so
    // every in-flight item is finished — complete the drain bookkeeping
    // and report how much of the batch was refused at the gate.
    if policy.gate.is_draining() {
        let out = policy.drain(std::time::Duration::ZERO);
        let refused = statuses
            .iter()
            .filter(|s| matches!(s, JobStatus::Cancelled))
            .count();
        diva_trace::event!(
            1,
            "attack.drained",
            attack = kind,
            clean = out.clean,
            remaining = out.remaining,
            refused = refused as u64,
        );
    }
    ParAttackOutput {
        adv: Tensor::stack(&samples),
        first_flips,
        tracked: watch.is_some(),
        statuses,
    }
}

/// Serializes one finished image for the per-item checkpoint store:
/// `[first_flip as i64 LE (-1 = none)][ndims u64 LE][dims u64 LE...]
/// [f32 bits LE...]`.
fn encode_item(sample: &Tensor, flip: Option<usize>) -> Vec<u8> {
    let dims = sample.dims();
    let data = sample.data();
    let mut out = Vec::with_capacity(8 + 8 + 8 * dims.len() + 4 * data.len());
    out.extend_from_slice(&flip.map(|s| s as i64).unwrap_or(-1).to_le_bytes());
    out.extend_from_slice(&(dims.len() as u64).to_le_bytes());
    for &d in dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in data {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Inverse of [`encode_item`]; `None` on any structural mismatch (the
/// caller recomputes, it never trusts a malformed payload).
fn decode_item(payload: &[u8]) -> Option<(Tensor, Option<usize>)> {
    let read_u64 = |at: usize| -> Option<u64> {
        payload
            .get(at..at + 8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    };
    let flip_raw = read_u64(0)? as i64;
    let flip = usize::try_from(flip_raw).ok();
    let ndims = read_u64(8)? as usize;
    if ndims == 0 || ndims > 8 {
        return None;
    }
    let mut dims = Vec::with_capacity(ndims);
    for d in 0..ndims {
        dims.push(read_u64(16 + 8 * d)? as usize);
    }
    let len: usize = dims.iter().product();
    let data_at = 16 + 8 * ndims;
    let bytes = payload.get(data_at..)?;
    if bytes.len() != 4 * len {
        return None;
    }
    let data: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().expect("4 bytes"))))
        .collect();
    Some((Tensor::from_vec(data, &dims), flip))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{diva_attack_traced, pgd_attack_traced, AttackCfg};
    use diva_models::{Architecture, ModelCfg};
    use diva_par::supervise::RetryPolicy;
    use diva_quant::{QatNetwork, QuantCfg};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Duration;

    fn rand_images(rng: &mut StdRng, n: usize, dims: &[usize]) -> Tensor {
        let per: usize = dims.iter().product();
        let samples: Vec<Tensor> = (0..n)
            .map(|_| Tensor::from_vec((0..per).map(|_| rng.gen_range(0.0..1.0)).collect(), dims))
            .collect();
        Tensor::stack(&samples)
    }

    fn victim() -> (diva_nn::Network, QatNetwork, Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(44);
        let net = Architecture::ResNet.build(&ModelCfg::tiny(4), &mut rng);
        let images = rand_images(&mut rng, 6, &[3, 8, 8]);
        let mut qat = QatNetwork::new(net.clone(), QuantCfg::default());
        qat.calibrate(&images);
        let labels = net.predict(&images);
        (net, qat, images, labels)
    }

    #[test]
    fn parallel_equals_serial_bitwise() {
        let _lock = diva_fault::test_lock(); // an armed panic plan would poison this
        let (net, qat, x, labels) = victim();
        let cfg = AttackCfg::with_steps(4);
        let run = |jobs: usize| {
            diva_par::set_jobs(jobs);
            let out = par_attack_images("DIVA", &x, &labels, Some(&qat), |_, xi, yi, hook| {
                diva_attack_traced(&net, &qat, xi, yi, 1.0, &cfg, hook)
            });
            diva_par::set_jobs(0);
            out
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.adv.data(), parallel.adv.data(), "adv batch differs");
        assert_eq!(serial.first_flips, parallel.first_flips);
        assert!(serial.tracked && parallel.tracked);
    }

    #[test]
    fn matches_handwritten_per_image_loop() {
        let _lock = diva_fault::test_lock(); // an armed panic plan would poison this
        let (_net, qat, x, labels) = victim();
        let cfg = AttackCfg::with_steps(3);
        diva_par::set_jobs(2);
        let out = par_attack_images(
            "PGD",
            &x,
            &labels,
            None::<&QatNetwork>,
            |_, xi, yi, hook| pgd_attack_traced(&qat, xi, yi, &cfg, hook),
        );
        diva_par::set_jobs(0);
        assert!(!out.tracked);
        assert_eq!(out.first_flips, vec![None; labels.len()]);
        for (i, &label) in labels.iter().enumerate() {
            let xi = gather(&x, &[i]);
            let want = pgd_attack_traced(&qat, &xi, &[label], &cfg, |_| {});
            assert_eq!(
                out.adv.index_batch(i).data(),
                want.index_batch(0).data(),
                "image {i} differs from the serial per-image loop"
            );
        }
    }

    #[test]
    fn worker_panic_fails_one_image_and_completes_batch() {
        let _lock = diva_fault::test_lock();
        let (_net, qat, x, labels) = victim();
        let cfg = AttackCfg::with_steps(2);
        let plan = diva_fault::FaultPlan::parse("worker-panic:item=3").unwrap();
        diva_fault::set_plan(Some(plan));
        for jobs in [1, 4] {
            diva_par::set_jobs(jobs);
            let out = par_attack_images(
                "PGD",
                &x,
                &labels,
                None::<&QatNetwork>,
                |_, xi, yi, hook| pgd_attack_traced(&qat, xi, yi, &cfg, hook),
            );
            diva_par::set_jobs(0);
            use JobStatus::{Failed, Ok};
            assert_eq!(
                out.statuses,
                vec![Ok, Ok, Ok, Failed, Ok, Ok],
                "exactly item 3 fails at jobs={jobs}"
            );
            // The failed slot carries the untouched natural image; every
            // other image was still attacked.
            assert_eq!(out.adv.index_batch(3).data(), x.index_batch(3).data());
            for i in [0usize, 1, 2, 4, 5] {
                assert_ne!(
                    out.adv.index_batch(i).data(),
                    x.index_batch(i).data(),
                    "image {i} should have been perturbed"
                );
            }
        }
        diva_fault::set_plan(None);
    }

    #[test]
    fn stalled_image_times_out_and_the_rest_stay_bit_identical() {
        let _lock = diva_fault::test_lock();
        let (_net, qat, x, labels) = victim();
        let cfg = AttackCfg::with_steps(2);
        let attack = |_: usize, xi: &Tensor, yi: &[usize], hook: &mut dyn FnMut(&StepInfo)| {
            pgd_attack_traced(&qat, xi, yi, &cfg, hook)
        };
        diva_par::set_jobs(1);
        let baseline = par_attack_images("PGD", &x, &labels, None::<&QatNetwork>, attack);
        let plan = diva_fault::FaultPlan::parse("worker-stall:item=2,ms=30000").unwrap();
        diva_fault::set_plan(Some(plan));
        let policy = SupervisePolicy {
            item_deadline: Some(Duration::from_millis(250)),
            ..SupervisePolicy::default()
        };
        for jobs in [1, 4] {
            diva_par::set_jobs(jobs);
            let started = std::time::Instant::now();
            let out = par_attack_images_supervised(
                "PGD",
                &x,
                &labels,
                None::<&QatNetwork>,
                &policy,
                None,
                attack,
            );
            diva_par::set_jobs(0);
            assert!(
                started.elapsed() < Duration::from_secs(20),
                "watchdog must break the injected 30 s stall (jobs={jobs})"
            );
            assert_eq!(out.statuses[2], JobStatus::TimedOut, "jobs={jobs}");
            assert_eq!(
                out.adv.index_batch(2).data(),
                x.index_batch(2).data(),
                "timed-out slot must carry the natural image"
            );
            for i in [0usize, 1, 3, 4, 5] {
                assert_eq!(out.statuses[i], JobStatus::Ok, "item {i} at jobs={jobs}");
                assert_eq!(
                    out.adv.index_batch(i).data(),
                    baseline.adv.index_batch(i).data(),
                    "Ok item {i} must be bit-identical to the unsupervised run"
                );
            }
        }
        diva_fault::set_plan(None);
    }

    #[test]
    fn persistent_panic_is_quarantined_under_retry() {
        let _lock = diva_fault::test_lock();
        let (_net, qat, x, labels) = victim();
        let cfg = AttackCfg::with_steps(2);
        // worker-panic fires on every attempt, so the retry budget drains.
        let plan = diva_fault::FaultPlan::parse("worker-panic:item=1").unwrap();
        diva_fault::set_plan(Some(plan));
        let policy = SupervisePolicy {
            retry: RetryPolicy {
                max_attempts: 3,
                backoff_base_ms: 1,
                seed: 7,
            },
            ..SupervisePolicy::default()
        };
        diva_par::set_jobs(2);
        let out = par_attack_images_supervised(
            "PGD",
            &x,
            &labels,
            None::<&QatNetwork>,
            &policy,
            None,
            |_, xi, yi, hook| pgd_attack_traced(&qat, xi, yi, &cfg, hook),
        );
        diva_par::set_jobs(0);
        diva_fault::set_plan(None);
        assert_eq!(out.statuses[1], JobStatus::Quarantined);
        assert_eq!(out.adv.index_batch(1).data(), x.index_batch(1).data());
        for i in [0usize, 2, 3, 4, 5] {
            assert_eq!(out.statuses[i], JobStatus::Ok, "item {i}");
        }
    }

    #[test]
    fn item_store_resumes_completed_images_bitwise() {
        let _lock = diva_fault::test_lock();
        let (_net, qat, x, labels) = victim();
        let cfg = AttackCfg::with_steps(2);
        let attack = |_: usize, xi: &Tensor, yi: &[usize], hook: &mut dyn FnMut(&StepInfo)| {
            pgd_attack_traced(&qat, xi, yi, &cfg, hook)
        };
        let dir = std::env::temp_dir().join("diva_core_item_resume");
        std::fs::remove_dir_all(&dir).ok();
        let store = ItemStore::new(&dir, 0xA77A);
        let policy = SupervisePolicy::default();
        diva_par::set_jobs(2);
        let first = par_attack_images_supervised(
            "PGD",
            &x,
            &labels,
            None::<&QatNetwork>,
            &policy,
            Some(&store),
            attack,
        );
        assert!(first.statuses.iter().all(|s| s.is_ok()));
        // Second run: every item must load from the store rather than
        // recompute — proven by arming a panic that would fail item 0 if
        // the trajectory actually ran.
        let plan = diva_fault::FaultPlan::parse("worker-panic:item=0").unwrap();
        diva_fault::set_plan(Some(plan));
        let second = par_attack_images_supervised(
            "PGD",
            &x,
            &labels,
            None::<&QatNetwork>,
            &policy,
            Some(&store),
            attack,
        );
        diva_fault::set_plan(None);
        diva_par::set_jobs(0);
        assert!(
            second.statuses.iter().all(|s| s.is_ok()),
            "armed panic must be bypassed by the checkpoint load"
        );
        assert_eq!(
            second.adv.data(),
            first.adv.data(),
            "resume must be bitwise"
        );
        assert_eq!(second.first_flips, first.first_flips);
        std::fs::remove_dir_all(&dir).ok();
    }
}
