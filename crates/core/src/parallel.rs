//! Deterministic per-image parallel attack generation.
//!
//! DIVA's workload (PAPER.md §4) is per-image: each adversarial example is
//! a projected-ascent trajectory that depends only on its own natural image
//! and label. [`par_attack_images`] fans those trajectories out across
//! diva-par workers and merges them back in fixed image order, so the
//! stacked adversarial batch, first-flip annotations, and trace counter
//! totals are identical for every `DIVA_JOBS` setting — including `1`,
//! which runs the exact serial loop.
//!
//! Per-image generation is also *semantically* cleaner than the historical
//! whole-batch loop: batch-mean losses scale every image's gradient by the
//! same positive `1/n`, so sign-based steps (PGD, CW, DIVA) take identical
//! trajectories either way, while batch-coupled normalizations (momentum
//! PGD's L1 rescale) now see each image on its own, matching the paper's
//! single-image formulation.

use diva_nn::train::gather;
use diva_nn::Infer;
use diva_tensor::Tensor;

use crate::attack::{take_guard_report, StepInfo};
use crate::pipeline::FirstFlipTracker;

/// Merged result of a per-image attack fan-out.
#[derive(Debug, Clone)]
pub struct ParAttackOutput {
    /// Adversarial batch, stacked in the natural images' order.
    pub adv: Tensor,
    /// Per-image earliest step at which the watched model's prediction left
    /// its clean label (`None` = never flipped, or no watch model).
    pub first_flips: Vec<Option<usize>>,
    /// Whether a watch model observed the trajectories (i.e. whether
    /// `first_flips` carries information).
    pub tracked: bool,
    /// Per-image failure flags: `true` where the trajectory's worker
    /// panicked or the divergence guard's recovery budget ran out. Failed
    /// slots carry the *natural* image in `adv` (a failed attack is a
    /// no-op attack), so downstream evaluation stays shape-stable while
    /// `SuccessCounts::failed` reports the loss honestly.
    pub failed: Vec<bool>,
}

/// Generates one adversarial example per image of `x_nat`, in parallel.
///
/// `kind` is a stable attack label (`"PGD"`, `"DIVA (whitebox)"`, ...): each
/// trajectory runs inside a [`crate::attack::TraceScope`]`(kind, i)`, so at
/// `DIVA_TRACE=2` its `attack.step` events are attributed to
/// `(attack, item)` and one `attack.trajectory` event summarises the image
/// (first-flip step, guard outcome) — the raw material for diva-prof's
/// convergence analytics.
///
/// `attack` is invoked once per image with `(index, single-image batch,
/// single-label slice, step hook)` and must return the adversarial
/// single-image batch; it sees the same 1-image tensors a serial per-image
/// loop would, so any `*_attack_traced` driver slots in directly. When
/// `watch` is `Some`, each image gets its own [`FirstFlipTracker`] against
/// that model, fed from the attack's step hook — this is the per-step
/// inference cost that callers usually gate on `diva_trace::enabled(1)`.
///
/// Determinism: results are merged in image order and each trajectory
/// depends only on its own index, so the output is bit-identical for every
/// worker count.
pub fn par_attack_images<W, F>(
    kind: &str,
    x_nat: &Tensor,
    labels: &[usize],
    watch: Option<&W>,
    attack: F,
) -> ParAttackOutput
where
    W: Infer + Sync + ?Sized,
    F: Fn(usize, &Tensor, &[usize], &mut dyn FnMut(&StepInfo)) -> Tensor + Sync,
{
    let n = x_nat.dims()[0];
    assert_eq!(labels.len(), n, "labels/batch mismatch");
    let _span = diva_trace::span(1, "attack.par_images");
    let per_image = diva_par::par_map_indexed_catch(n, |i| {
        let _scope = diva_fault::ItemScope::enter(i);
        let _tscope = crate::attack::TraceScope::enter(kind, i as u64);
        diva_fault::maybe_panic(i);
        let xi = gather(x_nat, &[i]);
        let yi = [labels[i]];
        let mut tracker = watch.map(|m| FirstFlipTracker::new(m, &xi));
        let adv_i = {
            let mut hook = |info: &StepInfo| {
                if let (Some(t), Some(m)) = (tracker.as_mut(), watch) {
                    t.observe(m, info);
                }
            };
            attack(i, &xi, &yi, &mut hook)
        };
        let flip = tracker.and_then(|t| t.first_flips()[0]);
        let guard_failed = take_guard_report().failed;
        diva_trace::event!(
            2,
            "attack.trajectory",
            attack = kind,
            item = i,
            first_flip = flip.map(|s| s as i64).unwrap_or(-1),
            failed = guard_failed,
        );
        (adv_i.index_batch(0), flip, guard_failed)
    });
    let mut samples = Vec::with_capacity(n);
    let mut first_flips = Vec::with_capacity(n);
    let mut failed = Vec::with_capacity(n);
    for (i, item) in per_image.into_iter().enumerate() {
        match item {
            Ok((sample, flip, guard_failed)) => {
                samples.push(sample);
                first_flips.push(flip);
                failed.push(guard_failed);
            }
            Err(message) => {
                // The worker died mid-trajectory; keep the batch whole with
                // the untouched natural image and record the failure.
                samples.push(x_nat.index_batch(i));
                first_flips.push(None);
                failed.push(true);
                diva_trace::event!(1, "attack.image_failed", item = i, message = message);
            }
        }
    }
    let n_failed = failed.iter().filter(|&&f| f).count();
    if n_failed > 0 {
        diva_trace::counter!("attack.failed_images", n_failed as u64);
    }
    ParAttackOutput {
        adv: Tensor::stack(&samples),
        first_flips,
        tracked: watch.is_some(),
        failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{diva_attack_traced, pgd_attack_traced, AttackCfg};
    use diva_models::{Architecture, ModelCfg};
    use diva_quant::{QatNetwork, QuantCfg};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_images(rng: &mut StdRng, n: usize, dims: &[usize]) -> Tensor {
        let per: usize = dims.iter().product();
        let samples: Vec<Tensor> = (0..n)
            .map(|_| Tensor::from_vec((0..per).map(|_| rng.gen_range(0.0..1.0)).collect(), dims))
            .collect();
        Tensor::stack(&samples)
    }

    fn victim() -> (diva_nn::Network, QatNetwork, Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(44);
        let net = Architecture::ResNet.build(&ModelCfg::tiny(4), &mut rng);
        let images = rand_images(&mut rng, 6, &[3, 8, 8]);
        let mut qat = QatNetwork::new(net.clone(), QuantCfg::default());
        qat.calibrate(&images);
        let labels = net.predict(&images);
        (net, qat, images, labels)
    }

    #[test]
    fn parallel_equals_serial_bitwise() {
        let _lock = diva_fault::test_lock(); // an armed panic plan would poison this
        let (net, qat, x, labels) = victim();
        let cfg = AttackCfg::with_steps(4);
        let run = |jobs: usize| {
            diva_par::set_jobs(jobs);
            let out = par_attack_images("DIVA", &x, &labels, Some(&qat), |_, xi, yi, hook| {
                diva_attack_traced(&net, &qat, xi, yi, 1.0, &cfg, hook)
            });
            diva_par::set_jobs(0);
            out
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.adv.data(), parallel.adv.data(), "adv batch differs");
        assert_eq!(serial.first_flips, parallel.first_flips);
        assert!(serial.tracked && parallel.tracked);
    }

    #[test]
    fn matches_handwritten_per_image_loop() {
        let _lock = diva_fault::test_lock(); // an armed panic plan would poison this
        let (_net, qat, x, labels) = victim();
        let cfg = AttackCfg::with_steps(3);
        diva_par::set_jobs(2);
        let out = par_attack_images(
            "PGD",
            &x,
            &labels,
            None::<&QatNetwork>,
            |_, xi, yi, hook| pgd_attack_traced(&qat, xi, yi, &cfg, hook),
        );
        diva_par::set_jobs(0);
        assert!(!out.tracked);
        assert_eq!(out.first_flips, vec![None; labels.len()]);
        for (i, &label) in labels.iter().enumerate() {
            let xi = gather(&x, &[i]);
            let want = pgd_attack_traced(&qat, &xi, &[label], &cfg, |_| {});
            assert_eq!(
                out.adv.index_batch(i).data(),
                want.index_batch(0).data(),
                "image {i} differs from the serial per-image loop"
            );
        }
    }

    #[test]
    fn worker_panic_fails_one_image_and_completes_batch() {
        let _lock = diva_fault::test_lock();
        let (_net, qat, x, labels) = victim();
        let cfg = AttackCfg::with_steps(2);
        let plan = diva_fault::FaultPlan::parse("worker-panic:item=3").unwrap();
        diva_fault::set_plan(Some(plan));
        for jobs in [1, 4] {
            diva_par::set_jobs(jobs);
            let out = par_attack_images(
                "PGD",
                &x,
                &labels,
                None::<&QatNetwork>,
                |_, xi, yi, hook| pgd_attack_traced(&qat, xi, yi, &cfg, hook),
            );
            diva_par::set_jobs(0);
            assert_eq!(
                out.failed,
                vec![false, false, false, true, false, false],
                "exactly item 3 fails at jobs={jobs}"
            );
            // The failed slot carries the untouched natural image; every
            // other image was still attacked.
            assert_eq!(out.adv.index_batch(3).data(), x.index_batch(3).data());
            for i in [0usize, 1, 2, 4, 5] {
                assert_ne!(
                    out.adv.index_batch(i).data(),
                    x.index_batch(i).data(),
                    "image {i} should have been perturbed"
                );
            }
        }
        diva_fault::set_plan(None);
    }
}
