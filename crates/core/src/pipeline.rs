//! End-to-end attack pipelines (§4.2–§4.4) and batched evaluation.
//!
//! The pipelines differ only in *which models the attacker differentiates
//! through*; success is always judged against the true original and adapted
//! models:
//!
//! | setting        | gradient source (orig) | gradient source (adapted) |
//! |----------------|------------------------|---------------------------|
//! | whitebox       | original               | adapted                   |
//! | semi-blackbox  | distilled surrogate    | extracted from device     |
//! | blackbox       | distilled surrogate    | surrogate, re-adapted     |

use diva_distill::{reconstruct_surrogate_original, reconstruct_surrogate_pair, DistillCfg};
use diva_metrics::success::{AttackOutcome, JobStatus, SuccessCounts};
use diva_nn::train::TrainCfg;
use diva_nn::{Infer, Network};
use diva_quant::{Int8Engine, QatNetwork, QuantCfg};
use diva_tensor::Tensor;
use rand::rngs::StdRng;

use crate::attack::{diva_attack, AttackCfg, StepInfo};
use crate::model::DiffModel;

/// Tracks, per sample, the earliest attack step at which a model's label
/// diverges from its clean prediction. Feed it every [`StepInfo`] from a
/// traced attack (typically against the deployed edge model), then attach
/// the result to outcomes with [`evaluate_outcomes_with_flips`].
#[derive(Debug, Clone)]
pub struct FirstFlipTracker {
    clean_preds: Vec<usize>,
    first_flip: Vec<Option<usize>>,
}

impl FirstFlipTracker {
    /// Captures the model's clean predictions on the natural batch.
    pub fn new<A: Infer + ?Sized>(model: &A, x_nat: &Tensor) -> Self {
        let clean_preds = model.predict(x_nat);
        let first_flip = vec![None; clean_preds.len()];
        FirstFlipTracker {
            clean_preds,
            first_flip,
        }
    }

    /// Re-predicts on the current adversarial batch and records the step
    /// for any sample whose label just left its clean prediction. Each
    /// observation costs one inference pass over the batch, so callers
    /// usually gate tracking on `diva_trace::enabled(1)`.
    pub fn observe<A: Infer + ?Sized>(&mut self, model: &A, info: &StepInfo) {
        let preds = model.predict(info.x);
        assert_eq!(preds.len(), self.clean_preds.len(), "batch size changed");
        for (i, pred) in preds.iter().enumerate() {
            if self.first_flip[i].is_none() && *pred != self.clean_preds[i] {
                self.first_flip[i] = Some(info.step);
                diva_trace::record_u64("attack.first_flip_step", info.step as u64);
            }
        }
    }

    /// Per-sample first-flip steps (`None` = never flipped).
    pub fn first_flips(&self) -> &[Option<usize>] {
        &self.first_flip
    }
}

/// Evaluates a batch of attacked images against the true models, returning
/// one [`AttackOutcome`] per sample.
pub fn evaluate_outcomes<O: Infer + ?Sized, A: Infer + ?Sized>(
    original: &O,
    adapted: &A,
    x_adv: &Tensor,
    labels: &[usize],
) -> Vec<AttackOutcome> {
    let n = x_adv.dims()[0];
    assert_eq!(labels.len(), n, "labels/batch mismatch");
    let lo = original.logits(x_adv);
    let la = adapted.logits(x_adv);
    (0..n)
        .map(|i| {
            let o_row = lo.row(i);
            let a_pred = la.row(i).argmax().unwrap_or(0);
            AttackOutcome {
                original_correct: o_row.argmax() == Some(labels[i]),
                adapted_correct: a_pred == labels[i],
                adapted_pred_in_original_top5: o_row.topk(5).contains(&a_pred),
                first_flip_step: None,
                status: JobStatus::Ok,
            }
        })
        .collect()
}

/// [`evaluate_outcomes`] with per-sample first-flip annotations from a
/// [`FirstFlipTracker`] that observed the attack.
pub fn evaluate_outcomes_with_flips<O: Infer + ?Sized, A: Infer + ?Sized>(
    original: &O,
    adapted: &A,
    x_adv: &Tensor,
    labels: &[usize],
    flips: &[Option<usize>],
) -> Vec<AttackOutcome> {
    let outcomes = evaluate_outcomes(original, adapted, x_adv, labels);
    assert_eq!(flips.len(), outcomes.len(), "flips/batch mismatch");
    outcomes
        .into_iter()
        .zip(flips)
        .map(|(o, &f)| o.with_first_flip(f))
        .collect()
}

/// [`evaluate_outcomes`] aggregated into [`SuccessCounts`].
pub fn evaluate_attack<O: Infer + ?Sized, A: Infer + ?Sized>(
    original: &O,
    adapted: &A,
    x_adv: &Tensor,
    labels: &[usize],
) -> SuccessCounts {
    evaluate_outcomes(original, adapted, x_adv, labels)
        .into_iter()
        .collect()
}

/// Whitebox DIVA (§4.2): the attacker holds both true models.
pub fn whitebox_diva<O: DiffModel + ?Sized, A: DiffModel + ?Sized>(
    original: &O,
    adapted: &A,
    images: &Tensor,
    labels: &[usize],
    c: f32,
    cfg: &AttackCfg,
) -> Tensor {
    diva_attack(original, adapted, images, labels, c, cfg)
}

/// Everything the semi-blackbox attacker builds before attacking.
/// Serializable so the bench suite can checkpoint prepared surrogates and
/// resume an interrupted experiment without re-distilling.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SemiBlackboxAssets {
    /// The distilled full-precision surrogate of the original model.
    pub surrogate_original: Network,
    /// The differentiable adapted model recovered from the device.
    pub recovered_adapted: QatNetwork,
}

/// Semi-blackbox preparation (§4.3): extract the deployed model, distill a
/// surrogate original from it on attacker data.
pub fn prepare_semi_blackbox(
    deployed: &Int8Engine,
    architecture: &diva_nn::Graph,
    attacker_images: &Tensor,
    distill_cfg: &DistillCfg,
    train_cfg: &TrainCfg,
    rng: &mut StdRng,
) -> SemiBlackboxAssets {
    let (surrogate_original, recovered_adapted) = reconstruct_surrogate_original(
        deployed,
        architecture,
        attacker_images,
        distill_cfg,
        train_cfg,
        rng,
    );
    SemiBlackboxAssets {
        surrogate_original,
        recovered_adapted,
    }
}

/// Semi-blackbox DIVA: generate on (surrogate original, recovered adapted).
pub fn semi_blackbox_diva(
    assets: &SemiBlackboxAssets,
    images: &Tensor,
    labels: &[usize],
    c: f32,
    cfg: &AttackCfg,
) -> Tensor {
    diva_attack(
        &assets.surrogate_original,
        &assets.recovered_adapted,
        images,
        labels,
        c,
        cfg,
    )
}

/// Everything the blackbox attacker builds before attacking.
/// Serializable for the same checkpoint/resume path as
/// [`SemiBlackboxAssets`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BlackboxAssets {
    /// Query-distilled full-precision surrogate.
    pub surrogate_original: Network,
    /// The surrogate re-adapted (calibrated + QAT) by the attacker.
    pub surrogate_adapted: QatNetwork,
}

/// Blackbox preparation (§4.4): distill a surrogate fp32 model from query
/// access, then adapt it to obtain a surrogate adapted model.
#[allow(clippy::too_many_arguments)]
pub fn prepare_blackbox(
    deployed: &Int8Engine,
    fresh_student: Network,
    attacker_images: &Tensor,
    distill_cfg: &DistillCfg,
    train_cfg: &TrainCfg,
    quant_cfg: QuantCfg,
    rng: &mut StdRng,
) -> BlackboxAssets {
    let (surrogate_original, surrogate_adapted) = reconstruct_surrogate_pair(
        deployed,
        fresh_student,
        attacker_images,
        distill_cfg,
        train_cfg,
        quant_cfg,
        rng,
    );
    BlackboxAssets {
        surrogate_original,
        surrogate_adapted,
    }
}

/// Blackbox DIVA: generate on (surrogate original, surrogate adapted).
pub fn blackbox_diva(
    assets: &BlackboxAssets,
    images: &Tensor,
    labels: &[usize],
    c: f32,
    cfg: &AttackCfg,
) -> Tensor {
    diva_attack(
        &assets.surrogate_original,
        &assets.surrogate_adapted,
        images,
        labels,
        c,
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_models::{Architecture, ModelCfg};
    use rand::{Rng, SeedableRng};

    fn rand_images(rng: &mut StdRng, n: usize, dims: &[usize]) -> Tensor {
        let per: usize = dims.iter().product();
        let samples: Vec<Tensor> = (0..n)
            .map(|_| Tensor::from_vec((0..per).map(|_| rng.gen_range(0.0..1.0)).collect(), dims))
            .collect();
        Tensor::stack(&samples)
    }

    #[test]
    fn batched_outcomes_match_per_sample() {
        let mut rng = StdRng::seed_from_u64(40);
        let net = Architecture::ResNet.build(&ModelCfg::tiny(4), &mut rng);
        let images = rand_images(&mut rng, 16, &[3, 8, 8]);
        let mut qat = QatNetwork::new(net.clone(), QuantCfg::default());
        qat.calibrate(&images);
        let x = diva_nn::train::gather(&images, &(0..6).collect::<Vec<_>>());
        let labels = net.predict(&x);
        let batched = evaluate_outcomes(&net, &qat, &x, &labels);
        for (i, want) in batched.iter().enumerate() {
            let xi = diva_nn::train::gather(&x, &[i]);
            let got = AttackOutcome::evaluate(&net, &qat, &xi, labels[i]);
            assert_eq!(&got, want, "sample {i}");
        }
    }

    #[test]
    fn first_flip_tracker_records_earliest_divergence() {
        let mut rng = StdRng::seed_from_u64(42);
        let net = Architecture::ResNet.build(&ModelCfg::tiny(4), &mut rng);
        let images = rand_images(&mut rng, 16, &[3, 8, 8]);
        let mut qat = QatNetwork::new(net.clone(), QuantCfg::default());
        qat.calibrate(&images);
        let x = diva_nn::train::gather(&images, &(0..4).collect::<Vec<_>>());
        let labels = net.predict(&x);

        let mut tracker = FirstFlipTracker::new(&qat, &x);
        let cfg = AttackCfg::with_steps(8);
        let adv = crate::attack::diva_attack_traced(&net, &qat, &x, &labels, 1.0, &cfg, |info| {
            tracker.observe(&qat, info)
        });

        let flips = tracker.first_flips().to_vec();
        // Tracked steps are within the attack's step range.
        for f in flips.iter().flatten() {
            assert!((1..=8).contains(f), "flip step {f} out of range");
        }
        // Any sample whose final prediction differs from its clean one must
        // have been caught (the final step is observed too).
        let clean = qat.predict(&x);
        let after = qat.predict(&adv);
        for i in 0..clean.len() {
            if after[i] != clean[i] {
                assert!(flips[i].is_some(), "sample {i} flipped but untracked");
            }
        }
        // Annotations ride through evaluation unchanged.
        let outcomes = evaluate_outcomes_with_flips(&net, &qat, &adv, &labels, &flips);
        for (o, f) in outcomes.iter().zip(&flips) {
            assert_eq!(o.first_flip_step, *f);
        }
    }

    #[test]
    fn semi_blackbox_pipeline_produces_valid_perturbations() {
        let mut rng = StdRng::seed_from_u64(41);
        let net = Architecture::ResNet.build(&ModelCfg::tiny(4), &mut rng);
        let graph = net.graph().clone();
        let images = rand_images(&mut rng, 48, &[3, 8, 8]);
        let mut qat = QatNetwork::new(net, QuantCfg::default());
        qat.calibrate(&images);
        let deployed = Int8Engine::from_qat(&qat);
        let train_cfg = TrainCfg {
            epochs: 2,
            batch_size: 16,
            lr: 0.02,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        let assets = prepare_semi_blackbox(
            &deployed,
            &graph,
            &images,
            &DistillCfg::default(),
            &train_cfg,
            &mut rng,
        );
        let x = diva_nn::train::gather(&images, &[0, 1]);
        let labels = deployed.predict(&x);
        let cfg = AttackCfg::with_steps(5);
        let adv = semi_blackbox_diva(&assets, &x, &labels, 1.0, &cfg);
        assert!(crate::attack::linf_distance(&adv, &x) <= cfg.eps + 1e-6);
        // Evaluation against the *true* pair must run.
        let counts = evaluate_attack(&assets.surrogate_original, &deployed, &adv, &labels);
        assert_eq!(counts.total, 2);
    }
}
