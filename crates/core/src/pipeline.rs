//! End-to-end attack pipelines (§4.2–§4.4) and batched evaluation.
//!
//! The pipelines differ only in *which models the attacker differentiates
//! through*; success is always judged against the true original and adapted
//! models:
//!
//! | setting        | gradient source (orig) | gradient source (adapted) |
//! |----------------|------------------------|---------------------------|
//! | whitebox       | original               | adapted                   |
//! | semi-blackbox  | distilled surrogate    | extracted from device     |
//! | blackbox       | distilled surrogate    | surrogate, re-adapted     |

use diva_distill::{reconstruct_surrogate_original, reconstruct_surrogate_pair, DistillCfg};
use diva_metrics::success::{AttackOutcome, SuccessCounts};
use diva_nn::train::TrainCfg;
use diva_nn::{Infer, Network};
use diva_quant::{Int8Engine, QatNetwork, QuantCfg};
use diva_tensor::Tensor;
use rand::rngs::StdRng;

use crate::attack::{diva_attack, AttackCfg};
use crate::model::DiffModel;

/// Evaluates a batch of attacked images against the true models, returning
/// one [`AttackOutcome`] per sample.
pub fn evaluate_outcomes<O: Infer + ?Sized, A: Infer + ?Sized>(
    original: &O,
    adapted: &A,
    x_adv: &Tensor,
    labels: &[usize],
) -> Vec<AttackOutcome> {
    let n = x_adv.dims()[0];
    assert_eq!(labels.len(), n, "labels/batch mismatch");
    let lo = original.logits(x_adv);
    let la = adapted.logits(x_adv);
    (0..n)
        .map(|i| {
            let o_row = lo.row(i);
            let a_pred = la.row(i).argmax().unwrap_or(0);
            AttackOutcome {
                original_correct: o_row.argmax() == Some(labels[i]),
                adapted_correct: a_pred == labels[i],
                adapted_pred_in_original_top5: o_row.topk(5).contains(&a_pred),
            }
        })
        .collect()
}

/// [`evaluate_outcomes`] aggregated into [`SuccessCounts`].
pub fn evaluate_attack<O: Infer + ?Sized, A: Infer + ?Sized>(
    original: &O,
    adapted: &A,
    x_adv: &Tensor,
    labels: &[usize],
) -> SuccessCounts {
    evaluate_outcomes(original, adapted, x_adv, labels)
        .into_iter()
        .collect()
}

/// Whitebox DIVA (§4.2): the attacker holds both true models.
pub fn whitebox_diva<O: DiffModel + ?Sized, A: DiffModel + ?Sized>(
    original: &O,
    adapted: &A,
    images: &Tensor,
    labels: &[usize],
    c: f32,
    cfg: &AttackCfg,
) -> Tensor {
    diva_attack(original, adapted, images, labels, c, cfg)
}

/// Everything the semi-blackbox attacker builds before attacking.
#[derive(Debug, Clone)]
pub struct SemiBlackboxAssets {
    /// The distilled full-precision surrogate of the original model.
    pub surrogate_original: Network,
    /// The differentiable adapted model recovered from the device.
    pub recovered_adapted: QatNetwork,
}

/// Semi-blackbox preparation (§4.3): extract the deployed model, distill a
/// surrogate original from it on attacker data.
pub fn prepare_semi_blackbox(
    deployed: &Int8Engine,
    architecture: &diva_nn::Graph,
    attacker_images: &Tensor,
    distill_cfg: &DistillCfg,
    train_cfg: &TrainCfg,
    rng: &mut StdRng,
) -> SemiBlackboxAssets {
    let (surrogate_original, recovered_adapted) = reconstruct_surrogate_original(
        deployed,
        architecture,
        attacker_images,
        distill_cfg,
        train_cfg,
        rng,
    );
    SemiBlackboxAssets {
        surrogate_original,
        recovered_adapted,
    }
}

/// Semi-blackbox DIVA: generate on (surrogate original, recovered adapted).
pub fn semi_blackbox_diva(
    assets: &SemiBlackboxAssets,
    images: &Tensor,
    labels: &[usize],
    c: f32,
    cfg: &AttackCfg,
) -> Tensor {
    diva_attack(
        &assets.surrogate_original,
        &assets.recovered_adapted,
        images,
        labels,
        c,
        cfg,
    )
}

/// Everything the blackbox attacker builds before attacking.
#[derive(Debug, Clone)]
pub struct BlackboxAssets {
    /// Query-distilled full-precision surrogate.
    pub surrogate_original: Network,
    /// The surrogate re-adapted (calibrated + QAT) by the attacker.
    pub surrogate_adapted: QatNetwork,
}

/// Blackbox preparation (§4.4): distill a surrogate fp32 model from query
/// access, then adapt it to obtain a surrogate adapted model.
#[allow(clippy::too_many_arguments)]
pub fn prepare_blackbox(
    deployed: &Int8Engine,
    fresh_student: Network,
    attacker_images: &Tensor,
    distill_cfg: &DistillCfg,
    train_cfg: &TrainCfg,
    quant_cfg: QuantCfg,
    rng: &mut StdRng,
) -> BlackboxAssets {
    let (surrogate_original, surrogate_adapted) = reconstruct_surrogate_pair(
        deployed,
        fresh_student,
        attacker_images,
        distill_cfg,
        train_cfg,
        quant_cfg,
        rng,
    );
    BlackboxAssets {
        surrogate_original,
        surrogate_adapted,
    }
}

/// Blackbox DIVA: generate on (surrogate original, surrogate adapted).
pub fn blackbox_diva(
    assets: &BlackboxAssets,
    images: &Tensor,
    labels: &[usize],
    c: f32,
    cfg: &AttackCfg,
) -> Tensor {
    diva_attack(
        &assets.surrogate_original,
        &assets.surrogate_adapted,
        images,
        labels,
        c,
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_models::{Architecture, ModelCfg};
    use rand::{Rng, SeedableRng};

    fn rand_images(rng: &mut StdRng, n: usize, dims: &[usize]) -> Tensor {
        let per: usize = dims.iter().product();
        let samples: Vec<Tensor> = (0..n)
            .map(|_| Tensor::from_vec((0..per).map(|_| rng.gen_range(0.0..1.0)).collect(), dims))
            .collect();
        Tensor::stack(&samples)
    }

    #[test]
    fn batched_outcomes_match_per_sample() {
        let mut rng = StdRng::seed_from_u64(40);
        let net = Architecture::ResNet.build(&ModelCfg::tiny(4), &mut rng);
        let images = rand_images(&mut rng, 16, &[3, 8, 8]);
        let mut qat = QatNetwork::new(net.clone(), QuantCfg::default());
        qat.calibrate(&images);
        let x = diva_nn::train::gather(&images, &(0..6).collect::<Vec<_>>());
        let labels = net.predict(&x);
        let batched = evaluate_outcomes(&net, &qat, &x, &labels);
        for (i, want) in batched.iter().enumerate() {
            let xi = diva_nn::train::gather(&x, &[i]);
            let got = AttackOutcome::evaluate(&net, &qat, &xi, labels[i]);
            assert_eq!(&got, want, "sample {i}");
        }
    }

    #[test]
    fn semi_blackbox_pipeline_produces_valid_perturbations() {
        let mut rng = StdRng::seed_from_u64(41);
        let net = Architecture::ResNet.build(&ModelCfg::tiny(4), &mut rng);
        let graph = net.graph().clone();
        let images = rand_images(&mut rng, 48, &[3, 8, 8]);
        let mut qat = QatNetwork::new(net, QuantCfg::default());
        qat.calibrate(&images);
        let deployed = Int8Engine::from_qat(&qat);
        let train_cfg = TrainCfg {
            epochs: 2,
            batch_size: 16,
            lr: 0.02,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        let assets = prepare_semi_blackbox(
            &deployed,
            &graph,
            &images,
            &DistillCfg::default(),
            &train_cfg,
            &mut rng,
        );
        let x = diva_nn::train::gather(&images, &[0, 1]);
        let labels = deployed.predict(&x);
        let cfg = AttackCfg::with_steps(5);
        let adv = semi_blackbox_diva(&assets, &x, &labels, 1.0, &cfg);
        assert!(crate::attack::linf_distance(&adv, &x) <= cfg.eps + 1e-6);
        // Evaluation against the *true* pair must run.
        let counts = evaluate_attack(&assets.surrogate_original, &deployed, &adv, &labels);
        assert_eq!(counts.total, 2);
    }
}
