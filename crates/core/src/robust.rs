//! PGD adversarial training — the robust-training defense evaluated in §5.5.
//!
//! Solves the minimax problem of Eq. 4: each mini-batch is replaced by PGD
//! adversarial examples crafted against the *current* model before the
//! gradient step, following Madry et al.'s robustness library defaults
//! (ε = 8/255, 20-ish attack steps, no random start).

use diva_nn::train::{gather, gather_labels, shuffled_batches, EpochStats, TrainCfg};
use diva_nn::{losses, optim::Sgd, Network};
use diva_tensor::Tensor;
use rand::rngs::StdRng;

use crate::attack::{pgd_attack, AttackCfg};

/// Robust-training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustCfg {
    /// Standard training knobs.
    pub train: TrainCfg,
    /// The inner-maximisation attack. Fewer steps than evaluation-time PGD
    /// keeps training tractable, as is standard.
    pub attack: AttackCfg,
}

impl Default for RobustCfg {
    fn default() -> Self {
        RobustCfg {
            train: TrainCfg::default(),
            attack: AttackCfg {
                steps: 7,
                ..AttackCfg::paper_default()
            },
        }
    }
}

/// Adversarially trains `net` in place; returns per-epoch stats where
/// `accuracy` is the *adversarial* training accuracy.
pub fn adversarial_training(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    cfg: &RobustCfg,
    rng: &mut StdRng,
) -> Vec<EpochStats> {
    let n = images.dims()[0];
    assert_eq!(labels.len(), n, "labels/images mismatch");
    let mut opt = Sgd::new(cfg.train.lr, cfg.train.momentum, cfg.train.weight_decay);
    let mut stats = Vec::with_capacity(cfg.train.epochs);
    for _ in 0..cfg.train.epochs {
        let mut loss_sum = 0.0;
        let mut correct = 0usize;
        for batch in shuffled_batches(n, cfg.train.batch_size, rng) {
            let x = gather(images, &batch);
            let y = gather_labels(labels, &batch);
            // Inner maximisation: craft adversarial examples on the frozen
            // current model.
            let x_adv = pgd_attack(&*net, &x, &y, &cfg.attack);
            // Outer minimisation: ordinary CE step on the adversarial batch.
            let exec = net.forward(&x_adv);
            let logits = exec.output(net.graph()).clone();
            let (loss, dlogits) = losses::cross_entropy(&logits, &y);
            loss_sum += loss * batch.len() as f32;
            correct += (0..batch.len())
                .filter(|&i| logits.row(i).argmax() == Some(y[i]))
                .count();
            net.backward(&exec, &dlogits);
            opt.step(net.params_mut());
        }
        stats.push(EpochStats {
            loss: loss_sum / n as f32,
            accuracy: correct as f32 / n as f32,
        });
    }
    stats
}

/// Accuracy of `model` under a PGD attack — "robust accuracy", the §5.5
/// metric.
pub fn robust_accuracy<M: crate::model::DiffModel + ?Sized>(
    model: &M,
    images: &Tensor,
    labels: &[usize],
    cfg: &AttackCfg,
) -> f32 {
    let adv = pgd_attack(model, images, labels, cfg);
    losses::accuracy(&model.logits(&adv), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_models::{Architecture, ModelCfg};
    use rand::{Rng, SeedableRng};

    /// Separable two-class blobs.
    fn blob_data(rng: &mut StdRng, n: usize) -> (Tensor, Vec<usize>) {
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let base = if class == 0 { 0.3 } else { 0.7 };
            images.push(Tensor::from_vec(
                (0..3 * 64)
                    .map(|_| (base + rng.gen_range(-0.1..0.1f32)).clamp(0.0, 1.0))
                    .collect(),
                &[3, 8, 8],
            ));
            labels.push(class);
        }
        (Tensor::stack(&images), labels)
    }

    #[test]
    fn adversarial_training_optimises_its_objective() {
        // Unit-level property: the minimax loop drives *adversarial*
        // training accuracy up (the plain-vs-robust comparison of §5.5 is an
        // experiment-scale question, exercised by the `repro robust`
        // harness).
        let mut rng = StdRng::seed_from_u64(50);
        let (images, labels) = blob_data(&mut rng, 64);
        let mut net = Architecture::ResNet.build(&ModelCfg::tiny(2), &mut rng);
        let cfg = RobustCfg {
            train: TrainCfg {
                epochs: 10,
                batch_size: 16,
                lr: 0.01,
                momentum: 0.9,
                weight_decay: 0.0,
            },
            attack: AttackCfg {
                steps: 3,
                ..AttackCfg::paper_default()
            },
        };
        let before = robust_accuracy(&net, &images, &labels, &AttackCfg::with_steps(10));
        let stats = adversarial_training(&mut net, &images, &labels, &cfg, &mut rng);
        let first = stats.first().unwrap().accuracy;
        let last = stats.last().unwrap().accuracy;
        assert!(
            last > first.max(0.85) - 1e-6,
            "adversarial accuracy did not improve: {first} -> {last}"
        );
        let after = robust_accuracy(&net, &images, &labels, &AttackCfg::with_steps(10));
        assert!(
            after > before,
            "robust accuracy did not improve over the untrained model: {before} -> {after}"
        );
        // Clean accuracy is at least as good as adversarial accuracy.
        let clean = losses::accuracy(&diva_nn::Infer::logits(&net, &images), &labels);
        assert!(clean >= after - 1e-6);
    }

    #[test]
    fn stats_have_training_epochs() {
        let mut rng = StdRng::seed_from_u64(51);
        let (images, labels) = blob_data(&mut rng, 16);
        let mut net = Architecture::ResNet.build(&ModelCfg::tiny(2), &mut rng);
        let cfg = RobustCfg {
            train: TrainCfg {
                epochs: 2,
                batch_size: 8,
                lr: 0.01,
                momentum: 0.9,
                weight_decay: 0.0,
            },
            attack: AttackCfg::with_steps(2),
        };
        let stats = adversarial_training(&mut net, &images, &labels, &cfg, &mut rng);
        assert_eq!(stats.len(), 2);
    }
}
