//! The [`DiffModel`] abstraction: a model the attacker can differentiate
//! through.
//!
//! Whitebox DIVA needs input gradients from *both* the original fp32 model
//! and the adapted (fake-quant) model; the semi-blackbox variant swaps in a
//! distilled surrogate for the original; the blackbox variant swaps in
//! surrogates for both. All of those are either a [`Network`] or a
//! [`QatNetwork`], unified here.

use diva_nn::{Infer, Network};
use diva_quant::QatNetwork;
use diva_tensor::Tensor;

/// A differentiable classifier: produces logits and, given a gradient w.r.t.
/// those logits, the gradient w.r.t. the input image.
pub trait DiffModel: Infer {
    /// Runs a forward pass, calls `d_logits` on the logits to obtain the
    /// objective's logit-gradient, and back-propagates it to the input.
    ///
    /// Returns `(logits, d_objective/d_input)`.
    fn value_and_grad(
        &self,
        x: &Tensor,
        d_logits: &mut dyn FnMut(&Tensor) -> Tensor,
    ) -> (Tensor, Tensor);
}

impl DiffModel for Network {
    fn value_and_grad(
        &self,
        x: &Tensor,
        d_logits: &mut dyn FnMut(&Tensor) -> Tensor,
    ) -> (Tensor, Tensor) {
        let exec = self.forward(x);
        let logits = exec.output(self.graph()).clone();
        let dl = d_logits(&logits);
        let gx = self.input_grad(&exec, &dl);
        (logits, gx)
    }
}

impl DiffModel for QatNetwork {
    fn value_and_grad(
        &self,
        x: &Tensor,
        d_logits: &mut dyn FnMut(&Tensor) -> Tensor,
    ) -> (Tensor, Tensor) {
        let exec = self.forward(x);
        let logits = exec.output(self.network().graph()).clone();
        let dl = d_logits(&logits);
        let gx = self.input_grad(&exec, &dl);
        (logits, gx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_models::{Architecture, ModelCfg};
    use diva_nn::losses;
    use diva_quant::QuantCfg;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rand_images(rng: &mut StdRng, n: usize, dims: &[usize]) -> Tensor {
        let per: usize = dims.iter().product();
        let samples: Vec<Tensor> = (0..n)
            .map(|_| Tensor::from_vec((0..per).map(|_| rng.gen_range(0.0..1.0)).collect(), dims))
            .collect();
        Tensor::stack(&samples)
    }

    #[test]
    fn network_value_and_grad_matches_manual() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Architecture::ResNet.build(&ModelCfg::tiny(4), &mut rng);
        let x = rand_images(&mut rng, 2, &[3, 8, 8]);
        let labels = [0usize, 3];
        let (logits, gx) = net.value_and_grad(&x, &mut |l| losses::cross_entropy(l, &labels).1);
        assert_eq!(logits.dims(), &[2, 4]);
        assert_eq!(gx.dims(), x.dims());
        // Finite-difference spot check on the CE objective.
        let f = |xx: &Tensor| {
            let l = net.logits(xx);
            losses::cross_entropy(&l, &labels).0
        };
        let eps = 1e-2;
        for &i in &[0usize, 77, 191] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 5e-2 * (1.0 + num.abs()),
                "grad[{i}] numeric {num} vs analytic {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn qat_value_and_grad_flows() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Architecture::MobileNet.build(&ModelCfg::tiny(4), &mut rng);
        let images = rand_images(&mut rng, 16, &[3, 8, 8]);
        let mut qat = QatNetwork::new(net, QuantCfg::default());
        qat.calibrate(&images);
        let x = rand_images(&mut rng, 1, &[3, 8, 8]);
        let (logits, gx) = qat.value_and_grad(&x, &mut |l| losses::cross_entropy(l, &[1]).1);
        assert_eq!(logits.dims(), &[1, 4]);
        assert!(gx.norm_inf() > 0.0, "STE gradient vanished entirely");
    }
}
