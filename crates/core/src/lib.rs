//! `diva-core` — the paper's contribution: **DIVA**, the differential
//! evasive attack on edge-adapted models, plus the baselines it is compared
//! against and the defenses it is evaluated under.
//!
//! The attack exploits the *divergence* between an original full-precision
//! model and its edge adaptation (quantized or pruned). Its loss (Eq. 5)
//!
//! ```text
//! L_DIVA(x, y) = p_orig(x)[y] − c · p_adapted(x)[y]
//! ```
//!
//! is ascended with PGD-style projected steps (Eq. 6): the perturbation
//! *raises* the original model's confidence in the true class while
//! *destroying* the adapted model's — so the adversarial image fools the
//! edge model yet sails through validation on the server model.
//!
//! Layout:
//!
//! * [`model`] — the [`model::DiffModel`] abstraction: anything that can
//!   produce logits *and* input gradients (fp32 networks and QAT networks);
//! * [`attack`] — the projected-ascent driver and the attack zoo: FGSM,
//!   PGD, Momentum PGD, CW(L∞), DIVA, targeted DIVA;
//! * [`pipeline`] — end-to-end whitebox / semi-blackbox / blackbox attack
//!   pipelines and batched evaluation (§4.2–§4.4);
//! * [`robust`] — PGD adversarial training, the §5.5 defense.
//!
//! # Example
//!
//! ```no_run
//! use diva_core::attack::{diva_attack, AttackCfg};
//! use diva_core::pipeline::evaluate_attack;
//! # fn demo(original: diva_nn::Network, adapted: diva_quant::QatNetwork,
//! #         images: diva_tensor::Tensor, labels: Vec<usize>) {
//! let cfg = AttackCfg::paper_default();
//! let adv = diva_attack(&original, &adapted, &images, &labels, 1.0, &cfg);
//! let counts = evaluate_attack(&original, &adapted, &adv, &labels);
//! println!("top-1 evasive success: {:.1}%", 100.0 * counts.top1_rate());
//! # }
//! ```

pub mod attack;
pub mod model;
pub mod parallel;
pub mod pipeline;
pub mod robust;

pub use attack::{
    cw_attack, diva_attack, diva_targeted_attack, fgsm_attack, momentum_pgd_attack, pgd_attack,
    AttackCfg, TraceScope,
};
pub use model::DiffModel;
pub use parallel::{par_attack_images, par_attack_images_supervised, ParAttackOutput};
pub use pipeline::{evaluate_attack, evaluate_outcomes};
pub use robust::{adversarial_training, RobustCfg};
