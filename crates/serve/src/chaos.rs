//! `serve chaos`: a seeded fault campaign against a live in-process server.
//!
//! One run walks three phases against a single journal directory:
//!
//! 1. **Shed** — a blocker occupies the dispatcher, the bounded queue
//!    fills, and two further submits must shed with typed `Overloaded`
//!    replies (never queue growth, never a dropped connection).
//! 2. **Faults** — a seeded `DIVA_FAULT` plan is installed and four jobs
//!    with known ids are driven through it: a worker stall that must trip
//!    the per-job deadline, an always-failing payload that must exhaust
//!    its retry budget into quarantine, a connection drop that must lose
//!    only the reply (the job itself completes and journals), and a
//!    post-seal journal corruption that must force one finished job back
//!    to pending on restart.
//! 3. **Crash + replay** — a blocker is caught in flight by [`Server::
//!    abort`] (the in-process stand-in for `kill -9`): it reports
//!    `Cancelled` and, by design, never writes a done record. A second
//!    server started on the same journal replays it (plus the
//!    corruption victim) and the merged done-set is byte-identical to
//!    direct execution.
//!
//! Every fault predicate is keyed by **job id**, so the same campaign run
//! under any `DIVA_JOBS` setting or batch split must produce the same
//! [`StatsSnapshot`] — the property `serve_chaos` (the CI entry point)
//! asserts by running the campaign at two worker counts and diffing.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use diva_fault::FaultPlan;
use diva_par::supervise::{self, RetryPolicy, SupervisePolicy};

use crate::client::Client;
use crate::protocol::Reply;
use crate::server::{JobExecutor, ServeConfig, Server, StatsSnapshot};

/// The deterministic reference output: what [`ChaosExec`] returns for a
/// job once nothing is in its way. Byte-identity of the replayed journal
/// is checked against this.
pub fn chaos_result(seed: u64, job: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(&(diva_fault::fnv1a64(payload) ^ seed).to_le_bytes());
    out.extend_from_slice(&job.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Chaos executor: behaviour is selected by the payload's first byte.
/// `b'b'` blocks on the gate (honouring cooperative interruption), `b'f'`
/// always fails (retry fodder); anything else completes immediately.
/// Output is [`chaos_result`] — a pure function of `(seed, job, payload)`,
/// which is what makes kill-and-replay byte-identical.
pub struct ChaosExec {
    /// Released by the harness; blockers spin on it cooperatively.
    pub gate: Arc<AtomicBool>,
    /// Mixed into every result and into the journal fingerprint.
    pub seed: u64,
}

impl JobExecutor for ChaosExec {
    fn execute(&self, job: u64, payload: &[u8]) -> Result<Vec<u8>, String> {
        match payload.first() {
            Some(b'b') => {
                while !self.gate.load(Ordering::Relaxed) {
                    if let Some(reason) = supervise::interrupted() {
                        return Err(format!("stopped while blocked: {}", reason.name()));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            Some(b'f') => return Err("injected failure".to_string()),
            _ => {}
        }
        Ok(chaos_result(self.seed, job, payload))
    }

    fn fingerprint(&self) -> u64 {
        self.seed ^ 0xC4A0_5EED
    }
}

/// What one campaign produced — everything the CI gate asserts on.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Final counters of the chaos'd server (phases 1–3).
    pub stats_run: StatsSnapshot,
    /// Job ids found pending when the restarted server scanned the
    /// journal (the cancelled blocker and the corruption victim).
    pub replay_pending: Vec<u64>,
    /// Done records the restart scan rejected (the corrupted one).
    pub rejected_done: usize,
    /// Final counters of the replaying server.
    pub stats_replay: StatsSnapshot,
    /// Whether the replaying server drained cleanly.
    pub replay_clean: bool,
    /// Job ids with valid done records after the replay.
    pub done_jobs: Vec<u64>,
    /// Whether every `Ok` done payload matched [`chaos_result`] exactly.
    pub merge_byte_identical: bool,
}

/// The campaign's expected chaos'd-server counters: 9 admitted (ids 4 and
/// 5 shed), 6 ok (the reply for id 9 is lost but the job is not), one
/// deadline timeout (7), one quarantine (8), one cancellation (10).
pub fn expected_run_stats() -> StatsSnapshot {
    StatsSnapshot {
        submitted: 9,
        ok: 6,
        timed_out: 1,
        cancelled: 1,
        quarantined: 1,
        shed: 2,
        replies_failed: 1,
        ..StatsSnapshot::default()
    }
}

/// The expected replaying-server counters: exactly the cancelled blocker
/// and the corruption victim re-execute, both to `Ok`.
pub fn expected_replay_stats() -> StatsSnapshot {
    StatsSnapshot {
        ok: 2,
        replayed: 2,
        ..StatsSnapshot::default()
    }
}

const DEADLINE: Duration = Duration::from_millis(2_000);

fn chaos_config(journal_dir: &Path, seed: u64) -> ServeConfig {
    ServeConfig {
        queue_capacity: 3,
        batch_max: 2,
        journal_dir: Some(journal_dir.to_path_buf()),
        policy: SupervisePolicy {
            item_deadline: Some(DEADLINE),
            retry: RetryPolicy {
                max_attempts: 2,
                backoff_base_ms: 10,
                seed,
            },
            ..SupervisePolicy::default()
        },
        drain_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) -> Result<(), String> {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !cond() {
        if std::time::Instant::now() >= deadline {
            return Err(format!("chaos harness timed out waiting for {what}"));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    Ok(())
}

/// Submits `payload` from its own connection on its own thread, returning
/// the join handle (the submit blocks until the job's terminal reply).
fn submit_async(
    addr: std::net::SocketAddr,
    payload: Vec<u8>,
) -> std::thread::JoinHandle<Result<Reply, String>> {
    std::thread::spawn(move || {
        let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
        c.submit(payload).map_err(|e| e.to_string())
    })
}

/// Runs the full campaign against `journal_dir` (which must start empty).
/// Deterministic in `(seed, journal_dir contents)`: the caller may run it
/// at several `DIVA_JOBS` settings and demand identical reports.
///
/// # Errors
///
/// Returns a message when a phase cannot even be set up (bind failure,
/// harness timeout) — *not* when an assertion would fail; callers compare
/// the report against [`expected_run_stats`]/[`expected_replay_stats`].
pub fn run_chaos(journal_dir: &Path, seed: u64) -> Result<ChaosReport, String> {
    let gate = Arc::new(AtomicBool::new(false));
    let exec = Arc::new(ChaosExec {
        gate: gate.clone(),
        seed,
    });
    let server = Server::start(chaos_config(journal_dir, seed), exec).map_err(|e| e.to_string())?;
    let addr = server.addr();

    // Phase 1 — shed. Job 0 blocks the dispatcher, jobs 1-3 fill the
    // queue (capacity 3), jobs 4 and 5 must shed.
    let h0 = submit_async(addr, b"b job0".to_vec());
    wait_until("job 0 in flight", || {
        server.gate_in_flight() >= 1 && server.queued() == 0
    })?;
    // The fillers race for ids 1-3, so they share one payload: any
    // id-to-payload assignment then yields the same journal bytes.
    let fillers: Vec<_> = (1..=3u8)
        .map(|_| submit_async(addr, b"n filler".to_vec()))
        .collect();
    wait_until("queue full", || server.queued() == 3)?;
    let mut shed_replies = Vec::new();
    for i in 4..=5u8 {
        let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
        shed_replies.push(
            c.submit(format!("n job{i}").into_bytes())
                .map_err(|e| e.to_string())?,
        );
    }
    gate.store(true, Ordering::Relaxed);
    let mut phase1 = vec![h0];
    phase1.extend(fillers);
    for h in phase1 {
        let _ = h.join();
    }
    wait_until("phase 1 complete", || server.stats().ok == 4)?;
    for reply in &shed_replies {
        if !matches!(reply, Reply::Overloaded { .. }) {
            return Err(format!("expected Overloaded shed reply, got {reply:?}"));
        }
    }

    // Phase 2 — seeded faults against known job ids. Submissions are
    // serialized on the admission counter so the ids are exact.
    let spec = format!(
        "worker-stall:item=7,ms=30000; slow-io:ms=2; conn-drop:job=9; \
         journal-corrupt:count=3,seed={seed},job=6,rec=done"
    );
    let plan = FaultPlan::parse(&spec).map_err(|e| e.to_string())?;
    diva_fault::set_plan(Some(plan));
    let payloads: [&[u8]; 4] = [b"n corrupt-me", b"n stall-me", b"f fail-me", b"n drop-me"];
    let mut phase2 = Vec::new();
    for payload in payloads {
        let admitted = server.stats().submitted;
        phase2.push(submit_async(addr, payload.to_vec()));
        wait_until("fault job admitted", || {
            server.stats().submitted == admitted + 1
        })?;
    }
    for h in phase2 {
        // Job 9's client sees a dropped connection instead of a reply;
        // that error is the point, not a harness failure.
        let _ = h.join();
    }
    wait_until("phase 2 complete", || {
        let s = server.stats();
        s.ok == 6 && s.timed_out == 1 && s.quarantined == 1
    })?;

    // Phase 3 — crash with a job in flight.
    gate.store(false, Ordering::Relaxed);
    let h10 = submit_async(addr, b"b job10".to_vec());
    wait_until("job 10 in flight", || server.gate_in_flight() >= 1)?;
    let report = server.abort();
    let stats_run = report.stats;
    let _ = h10.join();
    diva_fault::set_plan(None);

    // Restart on the same journal: the cancelled blocker (10) and the
    // corruption victim (6) must replay; nothing else may.
    let exec2 = Arc::new(ChaosExec {
        gate: Arc::new(AtomicBool::new(true)),
        seed,
    });
    let scan = crate::journal::Journal::open(journal_dir, exec2.fingerprint())
        .map_err(|e| e.to_string())?
        .scan();
    let replay_pending: Vec<u64> = scan.pending.iter().map(|(id, _)| *id).collect();
    let rejected_done = scan.rejected_done;

    let server2 =
        Server::start(chaos_config(journal_dir, seed), exec2.clone()).map_err(|e| e.to_string())?;
    let report2 = server2.shutdown(Duration::from_secs(10));

    // Merge check: every valid done record with an Ok status must carry
    // exactly the bytes direct execution produces.
    let final_scan = crate::journal::Journal::open(journal_dir, exec2.fingerprint())
        .map_err(|e| e.to_string())?
        .scan();
    let done_jobs: Vec<u64> = final_scan.done.keys().copied().collect();
    let expected_payloads = [
        (0u64, b"b job0".to_vec()),
        (1, b"n filler".to_vec()),
        (2, b"n filler".to_vec()),
        (3, b"n filler".to_vec()),
        (6, b"n corrupt-me".to_vec()),
        (9, b"n drop-me".to_vec()),
        (10, b"b job10".to_vec()),
    ];
    let merge_byte_identical = expected_payloads.iter().all(|(job, input)| {
        final_scan.done.get(job).is_some_and(|(status, bytes)| {
            *status == 0 && *bytes == chaos_result(seed, *job, input)
        })
    });

    Ok(ChaosReport {
        stats_run,
        replay_pending,
        rejected_done,
        stats_replay: report2.stats,
        replay_clean: report2.clean,
        done_jobs,
        merge_byte_identical,
    })
}

/// Checks one campaign report against the expected deterministic outcome,
/// naming the first deviation. Shared by the `serve_chaos` CI gate and
/// `repro serve chaos`.
///
/// # Errors
///
/// Returns a description of the first deviating field.
pub fn verify(report: &ChaosReport) -> Result<(), String> {
    if report.stats_run != expected_run_stats() {
        return Err(format!(
            "run counters {:?} != expected {:?}",
            report.stats_run,
            expected_run_stats()
        ));
    }
    if report.stats_replay != expected_replay_stats() {
        return Err(format!(
            "replay counters {:?} != expected {:?}",
            report.stats_replay,
            expected_replay_stats()
        ));
    }
    if report.replay_pending != vec![6, 10] {
        return Err(format!(
            "expected jobs 6 and 10 pending at restart, got {:?}",
            report.replay_pending
        ));
    }
    if report.rejected_done != 1 {
        return Err(format!(
            "expected exactly the corrupted done record rejected, got {}",
            report.rejected_done
        ));
    }
    if !report.replay_clean {
        return Err("replaying server did not drain cleanly".into());
    }
    if report.done_jobs != vec![0, 1, 2, 3, 6, 7, 8, 9, 10] {
        return Err(format!("unexpected final done set {:?}", report.done_jobs));
    }
    if !report.merge_byte_identical {
        return Err("replayed journal is not byte-identical to direct execution".into());
    }
    Ok(())
}

/// Runs the campaign once per worker count, verifying every report and
/// demanding identical counters across counts. Journal directories land
/// under `dir/jobs-N` and are left behind for artifact upload. Restores
/// the process-global worker-count override before returning.
///
/// # Errors
///
/// Returns the first setup failure, [`verify`] deviation, or cross-count
/// divergence, prefixed with the offending `jobs=` setting.
pub fn run_matrix(
    dir: &Path,
    seed: u64,
    jobs: &[usize],
) -> Result<Vec<(usize, ChaosReport)>, String> {
    if jobs.is_empty() {
        return Err("empty worker-count list".into());
    }
    let mut reports: Vec<(usize, ChaosReport)> = Vec::new();
    for &j in jobs {
        let journal_dir = dir.join(format!("jobs-{j}"));
        let _ = std::fs::remove_dir_all(&journal_dir);
        diva_par::set_jobs(j);
        let run = run_chaos(&journal_dir, seed);
        diva_par::set_jobs(0);
        let report = run.map_err(|e| format!("jobs={j}: {e}"))?;
        verify(&report).map_err(|e| format!("jobs={j}: {e}"))?;
        reports.push((j, report));
    }
    let (j0, first) = &reports[0];
    for (j, report) in &reports[1..] {
        if report.stats_run != first.stats_run || report.stats_replay != first.stats_replay {
            return Err(format!(
                "counters diverge across worker counts: jobs={j0} vs jobs={j} \
                 ({:?} vs {:?}; replay {:?} vs {:?})",
                first.stats_run, report.stats_run, first.stats_replay, report.stats_replay
            ));
        }
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_results_are_pure_in_their_inputs() {
        let a = chaos_result(7, 3, b"payload");
        let b = chaos_result(7, 3, b"payload");
        assert_eq!(a, b);
        assert_ne!(a, chaos_result(8, 3, b"payload"), "seed is mixed in");
        assert_ne!(a, chaos_result(7, 4, b"payload"), "job id is mixed in");
    }

    #[test]
    fn expected_snapshots_describe_the_campaign() {
        let run = expected_run_stats();
        assert_eq!(run.submitted, 9);
        assert_eq!(run.ok + run.timed_out + run.cancelled + run.quarantined, 9);
        let replay = expected_replay_stats();
        assert_eq!(replay.replayed, 2);
        assert_eq!(replay.ok, 2);
    }
}
