//! The wire protocol: length-prefixed frames with typed request/reply
//! messages.
//!
//! Framing is deliberately primitive — a little-endian `u32` byte length
//! followed by the payload — because the failure modes of framing are the
//! point: an oversized length is rejected *before* allocating, a short read
//! is reported as truncation distinct from a clean close, and a payload
//! that fails to decode is answered with a typed [`Reply::Rejected`]
//! without losing frame sync (the frame boundary is still known, so the
//! connection survives).
//!
//! All integers are little-endian. Strings and byte blobs are
//! length-prefixed with a `u32`. The first payload byte is the message
//! tag; requests use `0x01..=0x7F`, replies `0x81..=0xFF`, so a peer that
//! accidentally speaks the wrong direction is caught by the tag check.

use std::io::{Read, Write};

/// Byte length of the frame length prefix.
pub const LEN_PREFIX: usize = 4;

/// Default maximum frame payload size (16 MiB — a quick-scale image job is
/// well under 1 MiB; this bounds allocation per connection).
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;

/// Typed protocol failure. `Closed` (clean EOF between frames) is the only
/// "error" that is part of normal operation; everything else names what
/// the peer did wrong.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying socket failure.
    Io(std::io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The length prefix announced more than the frame budget allows.
    Oversized {
        /// Announced payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The connection ended mid-frame: `got` of `wanted` bytes arrived.
    Truncated {
        /// Bytes the frame needed.
        wanted: usize,
        /// Bytes that actually arrived.
        got: usize,
    },
    /// The frame arrived whole but its payload does not decode.
    Malformed(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "protocol I/O error: {e}"),
            ProtocolError::Closed => write!(f, "connection closed"),
            ProtocolError::Oversized { len, max } => {
                write!(
                    f,
                    "oversized frame: {len} bytes exceeds the {max}-byte limit"
                )
            }
            ProtocolError::Truncated { wanted, got } => {
                write!(f, "truncated frame: got {got} of {wanted} bytes")
            }
            ProtocolError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Writes one frame: length prefix, payload, flush.
///
/// # Errors
///
/// Returns [`ProtocolError::Io`] on socket failures.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtocolError> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, enforcing `max` on the announced length *before*
/// allocating.
///
/// # Errors
///
/// [`ProtocolError::Closed`] on clean EOF at a frame boundary,
/// [`ProtocolError::Truncated`] on EOF mid-frame,
/// [`ProtocolError::Oversized`] when the prefix exceeds `max`, and
/// [`ProtocolError::Io`] on socket failures.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, ProtocolError> {
    let mut prefix = [0u8; LEN_PREFIX];
    read_exact_or(r, &mut prefix, true)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max {
        return Err(ProtocolError::Oversized { len, max });
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, false)?;
    Ok(payload)
}

/// `read_exact` that distinguishes a clean close (EOF with zero bytes read,
/// only meaningful at a frame boundary) from truncation.
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), ProtocolError> {
    let wanted = buf.len();
    let mut got = 0;
    while got < wanted {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if at_boundary && got == 0 {
                    ProtocolError::Closed
                } else {
                    ProtocolError::Truncated { wanted, got }
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Wire form of a terminal job status ([`diva_par::supervise::JobStatus`]
/// plus `Replayed` for jobs recovered from the journal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireStatus {
    /// Completed; the payload is the result.
    Ok = 0,
    /// Failed with no retry budget left.
    Failed = 1,
    /// Stopped by its per-job deadline.
    TimedOut = 2,
    /// Stopped by cancellation or abort; replayed on restart.
    Cancelled = 3,
    /// Failed every attempt of the retry policy.
    Quarantined = 4,
}

impl WireStatus {
    /// Stable lowercase label for logs and metrics.
    pub fn name(self) -> &'static str {
        match self {
            WireStatus::Ok => "ok",
            WireStatus::Failed => "failed",
            WireStatus::TimedOut => "timed_out",
            WireStatus::Cancelled => "cancelled",
            WireStatus::Quarantined => "quarantined",
        }
    }

    /// Parses the wire byte.
    pub fn from_code(code: u8) -> Result<WireStatus, ProtocolError> {
        Ok(match code {
            0 => WireStatus::Ok,
            1 => WireStatus::Failed,
            2 => WireStatus::TimedOut,
            3 => WireStatus::Cancelled,
            4 => WireStatus::Quarantined,
            other => return Err(ProtocolError::Malformed(format!("unknown status {other}"))),
        })
    }
}

impl From<diva_par::supervise::JobStatus> for WireStatus {
    fn from(s: diva_par::supervise::JobStatus) -> WireStatus {
        use diva_par::supervise::JobStatus as J;
        match s {
            J::Ok => WireStatus::Ok,
            J::Failed => WireStatus::Failed,
            J::TimedOut => WireStatus::TimedOut,
            J::Cancelled => WireStatus::Cancelled,
            J::Quarantined => WireStatus::Quarantined,
        }
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Submit one attack job; the payload is executor-defined bytes.
    Submit {
        /// Opaque job payload, decoded by the server's executor.
        payload: Vec<u8>,
    },
    /// Ask for a metrics snapshot.
    Metrics,
    /// Begin a graceful drain, bounded by `timeout_ms`.
    Shutdown {
        /// Drain budget in milliseconds.
        timeout_ms: u64,
    },
}

const TAG_PING: u8 = 0x01;
const TAG_SUBMIT: u8 = 0x02;
const TAG_METRICS: u8 = 0x03;
const TAG_SHUTDOWN: u8 = 0x04;

impl Request {
    /// Serializes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(TAG_PING),
            Request::Submit { payload } => {
                out.push(TAG_SUBMIT);
                put_bytes(&mut out, payload);
            }
            Request::Metrics => out.push(TAG_METRICS),
            Request::Shutdown { timeout_ms } => {
                out.push(TAG_SHUTDOWN);
                out.extend_from_slice(&timeout_ms.to_le_bytes());
            }
        }
        out
    }

    /// Parses a frame payload into a request.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Malformed`] for empty payloads, unknown
    /// tags, and short bodies.
    pub fn decode(bytes: &[u8]) -> Result<Request, ProtocolError> {
        let mut cur = Cursor::new(bytes);
        let req = match cur.u8("request tag")? {
            TAG_PING => Request::Ping,
            TAG_SUBMIT => Request::Submit {
                payload: cur.bytes("submit payload")?,
            },
            TAG_METRICS => Request::Metrics,
            TAG_SHUTDOWN => Request::Shutdown {
                timeout_ms: cur.u64("shutdown timeout")?,
            },
            other => {
                return Err(ProtocolError::Malformed(format!(
                    "unknown request tag {other:#04x}"
                )))
            }
        };
        cur.finish()?;
        Ok(req)
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Liveness answer.
    Pong,
    /// Terminal answer for a submitted job.
    Done {
        /// Server-assigned job id.
        job: u64,
        /// Terminal status.
        status: WireStatus,
        /// Result payload (empty unless `status` is `Ok`).
        payload: Vec<u8>,
    },
    /// The admission queue is full; the job was shed, not queued.
    Overloaded {
        /// Jobs queued when the submit arrived.
        queued: u32,
        /// The queue's capacity.
        capacity: u32,
    },
    /// The server is draining and accepts no new jobs.
    Draining,
    /// The request was rejected (bad frame or undecodable payload).
    Rejected {
        /// Human-readable reason, from the typed error.
        message: String,
    },
    /// Metrics snapshot, as a JSON document.
    Metrics {
        /// The snapshot body ([`diva_trace::snapshot_json`] schema).
        json: String,
    },
    /// A shutdown request was accepted; drain has begun.
    ShutdownStarted {
        /// Jobs still queued when the drain began.
        pending: u64,
    },
}

const TAG_PONG: u8 = 0x81;
const TAG_DONE: u8 = 0x82;
const TAG_OVERLOADED: u8 = 0x83;
const TAG_DRAINING: u8 = 0x84;
const TAG_REJECTED: u8 = 0x85;
const TAG_METRICS_REPLY: u8 = 0x86;
const TAG_SHUTDOWN_STARTED: u8 = 0x87;

impl Reply {
    /// Serializes the reply into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Reply::Pong => out.push(TAG_PONG),
            Reply::Done {
                job,
                status,
                payload,
            } => {
                out.push(TAG_DONE);
                out.extend_from_slice(&job.to_le_bytes());
                out.push(*status as u8);
                put_bytes(&mut out, payload);
            }
            Reply::Overloaded { queued, capacity } => {
                out.push(TAG_OVERLOADED);
                out.extend_from_slice(&queued.to_le_bytes());
                out.extend_from_slice(&capacity.to_le_bytes());
            }
            Reply::Draining => out.push(TAG_DRAINING),
            Reply::Rejected { message } => {
                out.push(TAG_REJECTED);
                put_bytes(&mut out, message.as_bytes());
            }
            Reply::Metrics { json } => {
                out.push(TAG_METRICS_REPLY);
                put_bytes(&mut out, json.as_bytes());
            }
            Reply::ShutdownStarted { pending } => {
                out.push(TAG_SHUTDOWN_STARTED);
                out.extend_from_slice(&pending.to_le_bytes());
            }
        }
        out
    }

    /// Parses a frame payload into a reply.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Malformed`] for empty payloads, unknown
    /// tags, short bodies, and non-UTF-8 text fields.
    pub fn decode(bytes: &[u8]) -> Result<Reply, ProtocolError> {
        let mut cur = Cursor::new(bytes);
        let reply = match cur.u8("reply tag")? {
            TAG_PONG => Reply::Pong,
            TAG_DONE => Reply::Done {
                job: cur.u64("job id")?,
                status: WireStatus::from_code(cur.u8("status")?)?,
                payload: cur.bytes("done payload")?,
            },
            TAG_OVERLOADED => Reply::Overloaded {
                queued: cur.u32("queued")?,
                capacity: cur.u32("capacity")?,
            },
            TAG_DRAINING => Reply::Draining,
            TAG_REJECTED => Reply::Rejected {
                message: cur.string("rejection message")?,
            },
            TAG_METRICS_REPLY => Reply::Metrics {
                json: cur.string("metrics json")?,
            },
            TAG_SHUTDOWN_STARTED => Reply::ShutdownStarted {
                pending: cur.u64("pending")?,
            },
            other => {
                return Err(ProtocolError::Malformed(format!(
                    "unknown reply tag {other:#04x}"
                )))
            }
        };
        cur.finish()?;
        Ok(reply)
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Bounds-checked reader over a frame payload; every accessor names the
/// field it was reading so `Malformed` messages pinpoint the failure.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ProtocolError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err(ProtocolError::Malformed(format!(
                "short payload reading {what}: need {n} bytes at offset {}, have {}",
                self.at,
                self.bytes.len().saturating_sub(self.at)
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn bytes(&mut self, what: &str) -> Result<Vec<u8>, ProtocolError> {
        let len = self.u32(what)? as usize;
        Ok(self.take(len, what)?.to_vec())
    }

    fn string(&mut self, what: &str) -> Result<String, ProtocolError> {
        String::from_utf8(self.bytes(what)?)
            .map_err(|_| ProtocolError::Malformed(format!("{what} is not UTF-8")))
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed(format!(
                "{} trailing bytes after the message",
                self.bytes.len() - self.at
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_and_replies_round_trip() {
        let requests = [
            Request::Ping,
            Request::Submit {
                payload: vec![1, 2, 3, 255],
            },
            Request::Submit { payload: vec![] },
            Request::Metrics,
            Request::Shutdown { timeout_ms: 1500 },
        ];
        for r in &requests {
            assert_eq!(&Request::decode(&r.encode()).unwrap(), r);
        }
        let replies = [
            Reply::Pong,
            Reply::Done {
                job: 42,
                status: WireStatus::Ok,
                payload: b"adv".to_vec(),
            },
            Reply::Done {
                job: 7,
                status: WireStatus::Quarantined,
                payload: vec![],
            },
            Reply::Overloaded {
                queued: 64,
                capacity: 64,
            },
            Reply::Draining,
            Reply::Rejected {
                message: "oversized frame: 99 bytes exceeds the 10-byte limit".into(),
            },
            Reply::Metrics {
                json: "{\"level\":1}".into(),
            },
            Reply::ShutdownStarted { pending: 3 },
        ];
        for r in &replies {
            assert_eq!(&Reply::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn decode_rejects_garbage_with_typed_errors() {
        assert!(matches!(
            Request::decode(&[]),
            Err(ProtocolError::Malformed(_))
        ));
        assert!(matches!(
            Request::decode(&[0x7E]),
            Err(ProtocolError::Malformed(_))
        ));
        // Submit with a length prefix pointing past the end.
        assert!(matches!(
            Request::decode(&[TAG_SUBMIT, 0xFF, 0xFF, 0xFF, 0xFF]),
            Err(ProtocolError::Malformed(_))
        ));
        // Trailing bytes are not silently ignored.
        let mut frame = Request::Ping.encode();
        frame.push(0);
        assert!(matches!(
            Request::decode(&frame),
            Err(ProtocolError::Malformed(_))
        ));
        assert!(matches!(
            Reply::decode(&[TAG_DONE, 1, 2, 3]),
            Err(ProtocolError::Malformed(_))
        ));
        // A request tag is not a reply tag and vice versa.
        assert!(matches!(
            Reply::decode(&Request::Ping.encode()),
            Err(ProtocolError::Malformed(_))
        ));
        // Unknown status byte in an otherwise well-formed Done.
        let mut done = Reply::Done {
            job: 1,
            status: WireStatus::Ok,
            payload: vec![],
        }
        .encode();
        done[9] = 9;
        assert!(matches!(
            Reply::decode(&done),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn read_frame_enforces_framing_rules() {
        // Round trip.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(read_frame(&mut &buf[..], 64).unwrap(), b"hello");

        // Oversized: announced length beyond the budget, rejected before
        // the body is read.
        let mut over = Vec::new();
        over.extend_from_slice(&(1_000_000u32).to_le_bytes());
        match read_frame(&mut &over[..], 64) {
            Err(ProtocolError::Oversized { len, max }) => {
                assert_eq!((len, max), (1_000_000, 64));
            }
            other => panic!("expected Oversized, got {other:?}"),
        }

        // Truncated length prefix.
        match read_frame(&mut &[0x05u8, 0x00][..], 64) {
            Err(ProtocolError::Truncated { wanted, got }) => {
                assert_eq!((wanted, got), (LEN_PREFIX, 2));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }

        // Truncated body.
        let mut short = Vec::new();
        short.extend_from_slice(&(10u32).to_le_bytes());
        short.extend_from_slice(b"abc");
        match read_frame(&mut &short[..], 64) {
            Err(ProtocolError::Truncated { wanted, got }) => {
                assert_eq!((wanted, got), (10, 3));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }

        // Clean close at a frame boundary.
        assert!(matches!(
            read_frame(&mut &[][..], 64),
            Err(ProtocolError::Closed)
        ));
    }
}
