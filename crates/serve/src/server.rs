//! The daemon: accept loop, connection handlers, dispatcher, and the
//! drain state machine.
//!
//! ```text
//!            Running ──(Shutdown frame / shutdown() / abort())──▶ Draining ──▶ Stopped
//!  accept:   spawn handlers          stop accepting                 sockets shut down
//!  submit:   journal + enqueue       typed Draining reply           —
//!  queue:    bounded push/shed       closed; dispatcher drains it   empty
//!  executor: supervised batches      finish within the budget,      quiescent
//!                                    then gate + cancel stragglers
//!  journal:  pending→done records    flush (dir fsync) + final metrics snapshot
//! ```
//!
//! One dispatcher thread pops bounded batches off the admission queue and
//! runs them on the diva-par pool via `par_map_supervised`, so per-job
//! deadlines, seeded retry/backoff, cooperative cancellation, and the
//! watchdog all come from the supervision layer rather than being
//! reimplemented here. Fault predicates are keyed by **job id** (not batch
//! position), so a seeded chaos plan hits the same jobs under any
//! `DIVA_JOBS` setting or batch split — the determinism rule extends to
//! the service.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use diva_par::supervise::{self, par_map_supervised, SupervisePolicy};
use diva_trace::Json;

use crate::journal::Journal;
use crate::protocol::{read_frame, write_frame, ProtocolError, Reply, Request, WireStatus};
use crate::queue::{BoundedQueue, PushError};

/// The work the daemon hosts: deterministic bytes → bytes, executed inside
/// a supervised diva-par item. Implementations must honour the cooperative
/// checkpoints ([`supervise::interrupted`]) so deadlines and cancellation
/// can stop them, and must be deterministic in their input bytes — the
/// crash-safety story (replay is byte-identical) depends on it.
pub trait JobExecutor: Send + Sync {
    /// Runs one job. `Err` is a transient failure, retried under the
    /// server's policy.
    ///
    /// # Errors
    ///
    /// Returns a message describing the failure; the supervisor decides
    /// between retry and quarantine.
    fn execute(&self, job: u64, payload: &[u8]) -> Result<Vec<u8>, String>;

    /// Fingerprint of everything that determines results (model set,
    /// config). Journal records are sealed with it; a journal written by a
    /// different executor neither replays nor merges.
    fn fingerprint(&self) -> u64 {
        0
    }
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Admission queue capacity; beyond it submits shed with `Overloaded`.
    pub queue_capacity: usize,
    /// Max jobs per supervised batch (the pool's concurrency window).
    pub batch_max: usize,
    /// Per-connection frame size limit.
    pub max_frame: usize,
    /// Journal directory; `None` disables crash safety.
    pub journal_dir: Option<PathBuf>,
    /// Supervision policy for job execution (deadline, retry, cancel,
    /// drain gate).
    pub policy: SupervisePolicy,
    /// Budget for [`Server::shutdown`]'s graceful drain.
    pub drain_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: 64,
            batch_max: 8,
            max_frame: crate::protocol::DEFAULT_MAX_FRAME,
            journal_dir: None,
            policy: SupervisePolicy::default(),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Monotonic per-status job counters. Deterministic under a seeded chaos
/// plan — the chaos harness compares whole snapshots across `DIVA_JOBS`
/// settings.
#[derive(Debug, Default)]
pub struct Stats {
    submitted: AtomicU64,
    ok: AtomicU64,
    failed: AtomicU64,
    timed_out: AtomicU64,
    cancelled: AtomicU64,
    quarantined: AtomicU64,
    shed: AtomicU64,
    rejected_draining: AtomicU64,
    replayed: AtomicU64,
    frames_rejected: AtomicU64,
    replies_failed: AtomicU64,
}

/// A point-in-time copy of [`Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Jobs admitted to the queue.
    pub submitted: u64,
    /// Jobs that completed with a result.
    pub ok: u64,
    /// Jobs that failed with no retry budget.
    pub failed: u64,
    /// Jobs stopped by their deadline.
    pub timed_out: u64,
    /// Jobs stopped by cancellation/abort (replayed on restart).
    pub cancelled: u64,
    /// Jobs that failed every retry attempt.
    pub quarantined: u64,
    /// Submits shed by the bounded queue.
    pub shed: u64,
    /// Submits refused because the server was draining.
    pub rejected_draining: u64,
    /// Jobs re-executed from the journal at startup.
    pub replayed: u64,
    /// Frames rejected by validation (oversized/truncated/garbage).
    pub frames_rejected: u64,
    /// Replies that could not be written (client went away).
    pub replies_failed: u64,
}

impl Stats {
    fn bump_status(&self, status: WireStatus) {
        let cell = match status {
            WireStatus::Ok => &self.ok,
            WireStatus::Failed => &self.failed,
            WireStatus::TimedOut => &self.timed_out,
            WireStatus::Cancelled => &self.cancelled,
            WireStatus::Quarantined => &self.quarantined,
        };
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            submitted: get(&self.submitted),
            ok: get(&self.ok),
            failed: get(&self.failed),
            timed_out: get(&self.timed_out),
            cancelled: get(&self.cancelled),
            quarantined: get(&self.quarantined),
            shed: get(&self.shed),
            rejected_draining: get(&self.rejected_draining),
            replayed: get(&self.replayed),
            frames_rejected: get(&self.frames_rejected),
            replies_failed: get(&self.replies_failed),
        }
    }
}

impl StatsSnapshot {
    /// The snapshot as a JSON object (a sub-document of the metrics
    /// snapshot payload).
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("submitted", Json::Num(self.submitted as f64));
        j.set("ok", Json::Num(self.ok as f64));
        j.set("failed", Json::Num(self.failed as f64));
        j.set("timed_out", Json::Num(self.timed_out as f64));
        j.set("cancelled", Json::Num(self.cancelled as f64));
        j.set("quarantined", Json::Num(self.quarantined as f64));
        j.set("shed", Json::Num(self.shed as f64));
        j.set(
            "rejected_draining",
            Json::Num(self.rejected_draining as f64),
        );
        j.set("replayed", Json::Num(self.replayed as f64));
        j.set("frames_rejected", Json::Num(self.frames_rejected as f64));
        j.set("replies_failed", Json::Num(self.replies_failed as f64));
        j
    }
}

/// Terminal outcome of one job, handed from the dispatcher to the waiting
/// connection handler.
#[derive(Debug, Clone)]
struct Outcome {
    status: WireStatus,
    payload: Vec<u8>,
}

/// One-shot mailbox fulfilled by the dispatcher, waited on by the handler.
/// First fulfil wins; every admitted job is guaranteed exactly one.
#[derive(Clone, Default)]
struct Responder {
    cell: Arc<(Mutex<Option<Outcome>>, Condvar)>,
}

impl Responder {
    fn fulfill(&self, outcome: Outcome) {
        let (lock, cv) = &*self.cell;
        let mut slot = lock.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(outcome);
            cv.notify_all();
        }
    }

    fn is_fulfilled(&self) -> bool {
        let (lock, _) = &*self.cell;
        lock.lock().unwrap_or_else(|p| p.into_inner()).is_some()
    }

    fn wait(&self) -> Outcome {
        let (lock, cv) = &*self.cell;
        let mut slot = lock.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(o) = slot.as_ref() {
                return o.clone();
            }
            slot = cv.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }
}

struct Job {
    id: u64,
    payload: Vec<u8>,
    responder: Responder,
}

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue<Job>,
    journal: Option<Journal>,
    exec: Arc<dyn JobExecutor>,
    state: AtomicU8,
    next_job: AtomicU64,
    stats: Stats,
    started: Instant,
    drain_clean: AtomicBool,
    dispatch_done: (Mutex<bool>, Condvar),
    conns: Mutex<Vec<(std::thread::JoinHandle<()>, TcpStream)>>,
    finalizer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Shared {
    fn state_name(&self) -> &'static str {
        match self.state.load(Ordering::Relaxed) {
            RUNNING => "running",
            DRAINING => "draining",
            _ => "stopped",
        }
    }

    fn snapshot_json(&self) -> Json {
        let mut server = Json::obj();
        server.set("state", Json::Str(self.state_name().to_string()));
        server.set(
            "uptime_ms",
            Json::Num(self.started.elapsed().as_millis() as f64),
        );
        server.set("queued", Json::Num(self.queue.len() as f64));
        server.set("queue_capacity", Json::Num(self.queue.capacity() as f64));
        server.set(
            "next_job",
            Json::Num(self.next_job.load(Ordering::Relaxed) as f64),
        );
        diva_trace::snapshot_json(&[
            ("server", server),
            ("jobs", self.stats.snapshot().to_json()),
        ])
    }

    fn mark_dispatch_done(&self) {
        let (lock, cv) = &self.dispatch_done;
        *lock.lock().unwrap_or_else(|p| p.into_inner()) = true;
        cv.notify_all();
    }

    fn wait_dispatch_done(&self, timeout: Option<Duration>) -> bool {
        let (lock, cv) = &self.dispatch_done;
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut done = lock.lock().unwrap_or_else(|p| p.into_inner());
        while !*done {
            match deadline {
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return false;
                    }
                    let (guard, _) = cv
                        .wait_timeout(done, left)
                        .unwrap_or_else(|p| p.into_inner());
                    done = guard;
                }
                None => done = cv.wait(done).unwrap_or_else(|p| p.into_inner()),
            }
        }
        true
    }

    /// Begins the drain exactly once; later calls are no-ops. The winner
    /// spawns the finalizer thread that walks Draining → Stopped.
    fn begin_drain(self: &Arc<Shared>, timeout: Duration) {
        if self
            .state
            .compare_exchange(RUNNING, DRAINING, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        diva_trace::counter!("serve.drains", 1);
        diva_trace::event!(
            1,
            "serve.drain_begin",
            queued = self.queue.len(),
            timeout_ms = timeout.as_millis() as u64,
        );
        self.queue.close();
        let shared = self.clone();
        let h = std::thread::spawn(move || shared.finalize(timeout));
        *self.finalizer.lock().unwrap_or_else(|p| p.into_inner()) = Some(h);
    }

    /// Draining → Stopped: give the dispatcher the budget to finish the
    /// queue, then gate + cancel stragglers via the supervisor's drain,
    /// flush the journal, emit the final metrics snapshot, and release any
    /// connection still blocked on a read.
    fn finalize(self: Arc<Shared>, timeout: Duration) {
        let clean = self.wait_dispatch_done(Some(timeout));
        if !clean {
            // Budget exhausted: refuse unstarted items and cancel the
            // in-flight ones; the dispatcher then drains fast (every
            // remaining job reports Cancelled) and exits.
            let out = self.cfg.policy.drain(Duration::ZERO);
            diva_trace::event!(1, "serve.drain_forced", remaining = out.remaining,);
            self.wait_dispatch_done(None);
        }
        self.drain_clean.store(clean, Ordering::Relaxed);
        if let Some(j) = &self.journal {
            j.sync();
            let snapshot_path = j.dir().join("metrics-final.json");
            let mut body = self.snapshot_json().to_string_pretty();
            body.push('\n');
            let _ = std::fs::write(snapshot_path, body);
        }
        self.state.store(STOPPED, Ordering::SeqCst);
        for (_, stream) in self.conns.lock().unwrap_or_else(|p| p.into_inner()).iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        diva_trace::event!(1, "serve.drain_end", clean = clean);
    }
}

/// Result of a completed shutdown/abort.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// True when the dispatcher finished every queued job within the
    /// budget (no forced gate/cancel).
    pub clean: bool,
    /// Final job counters.
    pub stats: StatsSnapshot,
}

/// A running attack-as-a-service daemon. Dropping the handle does not stop
/// the server; call [`shutdown`](Server::shutdown), [`abort`]
/// (Server::abort), or [`join`](Server::join).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    dispatch: Option<std::thread::JoinHandle<()>>,
}

/// Why the server failed to start.
#[derive(Debug)]
pub enum StartError {
    /// The listener could not bind.
    Bind(std::io::Error),
    /// The journal directory could not be opened.
    Journal(diva_fault::ckpt::CkptError),
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::Bind(e) => write!(f, "cannot bind listener: {e}"),
            StartError::Journal(e) => write!(f, "cannot open journal: {e}"),
        }
    }
}

impl std::error::Error for StartError {}

impl Server {
    /// Opens the journal, replays unfinished jobs, binds the listener, and
    /// spawns the accept and dispatcher threads.
    ///
    /// # Errors
    ///
    /// Returns [`StartError`] when the bind or the journal open fails.
    pub fn start(cfg: ServeConfig, exec: Arc<dyn JobExecutor>) -> Result<Server, StartError> {
        let journal = match &cfg.journal_dir {
            Some(dir) => Some(Journal::open(dir, exec.fingerprint()).map_err(StartError::Journal)?),
            None => None,
        };
        let listener = TcpListener::bind(&cfg.addr).map_err(StartError::Bind)?;
        listener.set_nonblocking(true).map_err(StartError::Bind)?;
        let addr = listener.local_addr().map_err(StartError::Bind)?;

        let queue = BoundedQueue::new(cfg.queue_capacity);
        let shared = Arc::new(Shared {
            queue,
            journal,
            exec,
            state: AtomicU8::new(RUNNING),
            next_job: AtomicU64::new(0),
            stats: Stats::default(),
            started: Instant::now(),
            drain_clean: AtomicBool::new(false),
            dispatch_done: (Mutex::new(false), Condvar::new()),
            conns: Mutex::new(Vec::new()),
            finalizer: Mutex::new(None),
            cfg,
        });
        replay_unfinished(&shared);

        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(&shared, listener))
        };
        let dispatch = {
            let shared = shared.clone();
            std::thread::spawn(move || dispatch_loop(&shared))
        };
        diva_trace::event!(1, "serve.started", addr = addr.to_string());
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            dispatch: Some(dispatch),
        })
    }

    /// The bound address (the actual port when the config asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current job counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Items the admission queue currently holds.
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }

    /// The supervision drain gate (test hook: observing in-flight work).
    pub fn gate_in_flight(&self) -> usize {
        self.shared.cfg.policy.gate.in_flight()
    }

    /// Begins a graceful drain without waiting for it (the remote-shutdown
    /// entry point; `repro serve` calls [`join`](Server::join) afterwards).
    pub fn begin_shutdown(&self, timeout: Duration) {
        self.shared.begin_drain(timeout);
    }

    /// Graceful shutdown: drain within `timeout`, then stop. Blocks until
    /// every thread has exited.
    pub fn shutdown(self, timeout: Duration) -> DrainReport {
        self.shared.begin_drain(timeout);
        self.join()
    }

    /// Hard abort, the crash stand-in for kill-and-replay tests: cancel
    /// everything in flight (their journal records stay pending, so a
    /// restart replays them) and stop without finishing the queue.
    pub fn abort(self) -> DrainReport {
        diva_trace::counter!("serve.aborts", 1);
        self.shared.cfg.policy.cancel.cancel();
        self.shared.begin_drain(Duration::ZERO);
        self.join()
    }

    /// Waits for the server to stop (a shutdown must have been initiated
    /// locally or over the wire), then joins every thread.
    pub fn join(mut self) -> DrainReport {
        while self.shared.state.load(Ordering::SeqCst) != STOPPED {
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatch.take() {
            let _ = h.join();
        }
        let conns =
            std::mem::take(&mut *self.shared.conns.lock().unwrap_or_else(|p| p.into_inner()));
        for (h, _) in conns {
            let _ = h.join();
        }
        let finalizer = self
            .shared
            .finalizer
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take();
        if let Some(h) = finalizer {
            let _ = h.join();
        }
        DrainReport {
            clean: self.shared.drain_clean.load(Ordering::Relaxed),
            stats: self.shared.stats.snapshot(),
        }
    }
}

/// Replays unfinished jobs from the journal before the listener opens:
/// valid pending records without valid done records re-execute through the
/// same supervised path as live jobs, then journal their done records.
/// Rejected records are already counted by the scan.
fn replay_unfinished(shared: &Arc<Shared>) {
    let Some(journal) = &shared.journal else {
        return;
    };
    let scan = journal.scan();
    shared.next_job.store(scan.next_job, Ordering::Relaxed);
    if scan.pending.is_empty() {
        return;
    }
    diva_trace::event!(
        1,
        "serve.replay_begin",
        jobs = scan.pending.len(),
        lost = scan.lost,
        rejected_done = scan.rejected_done,
    );
    let reports = par_map_supervised(scan.pending.len(), &shared.cfg.policy, |i| {
        let (job, payload) = &scan.pending[i];
        run_job(shared.exec.as_ref(), *job, payload)
    });
    for ((job, _), report) in scan.pending.iter().zip(reports) {
        let status = WireStatus::from(report.status);
        if status != WireStatus::Cancelled {
            journal.record_done(*job, status as u8, report.value.as_deref().unwrap_or(&[]));
        }
        shared.stats.replayed.fetch_add(1, Ordering::Relaxed);
        shared.stats.bump_status(status);
        diva_trace::counter!("serve.jobs_replayed", 1);
        diva_trace::event!(1, "serve.job_replayed", job = *job, status = status.name());
    }
}

/// One job, exactly as both the dispatcher and replay run it: enter the
/// fault scope keyed by the *job id*, honour an armed stall, then execute.
/// Keying by job id (not batch position) is what makes seeded chaos plans
/// deterministic across batch splits and `DIVA_JOBS` settings.
fn run_job(exec: &dyn JobExecutor, job: u64, payload: &[u8]) -> Result<Vec<u8>, String> {
    let _scope = diva_fault::ItemScope::enter(job as usize);
    if let Some(d) = diva_fault::stall_duration(job as usize) {
        supervise::cooperative_stall(d);
    }
    if let Some(reason) = supervise::interrupted() {
        return Err(format!("stopped before execute: {}", reason.name()));
    }
    exec.execute(job, payload)
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    while shared.state.load(Ordering::SeqCst) == RUNNING {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let Ok(track) = stream.try_clone() else {
                    continue;
                };
                diva_trace::counter!("serve.conns_opened", 1);
                let shared2 = shared.clone();
                let h = std::thread::spawn(move || handle_conn(&shared2, stream));
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push((h, track));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Per-connection loop. Framing errors (oversized/truncated) are answered
/// with a typed `Rejected` and close this connection — frame sync is gone —
/// but never the server. Decode errors keep the connection: the frame
/// boundary is intact, so the next frame is readable.
fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    loop {
        let frame = match read_frame(&mut stream, shared.cfg.max_frame) {
            Ok(f) => f,
            Err(ProtocolError::Closed) => break,
            Err(e @ (ProtocolError::Oversized { .. } | ProtocolError::Truncated { .. })) => {
                shared.stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                diva_trace::counter!("serve.frames_rejected", 1);
                diva_trace::event!(1, "serve.frame_rejected", reason = e.to_string());
                let reply = Reply::Rejected {
                    message: e.to_string(),
                };
                let _ = write_frame(&mut stream, &reply.encode());
                break;
            }
            Err(_) => break,
        };
        let request = match Request::decode(&frame) {
            Ok(r) => r,
            Err(e) => {
                shared.stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                diva_trace::counter!("serve.frames_rejected", 1);
                diva_trace::event!(1, "serve.frame_rejected", reason = e.to_string());
                let reply = Reply::Rejected {
                    message: e.to_string(),
                };
                if write_frame(&mut stream, &reply.encode()).is_err() {
                    break;
                }
                continue;
            }
        };
        let keep = match request {
            Request::Ping => send(shared, &mut stream, &Reply::Pong),
            Request::Metrics => {
                let json = shared.snapshot_json().to_string_pretty();
                send(shared, &mut stream, &Reply::Metrics { json })
            }
            Request::Shutdown { timeout_ms } => {
                let reply = Reply::ShutdownStarted {
                    pending: shared.queue.len() as u64,
                };
                let keep = send(shared, &mut stream, &reply);
                shared.begin_drain(Duration::from_millis(timeout_ms));
                keep
            }
            Request::Submit { payload } => handle_submit(shared, &mut stream, payload),
        };
        if !keep {
            break;
        }
    }
    diva_trace::counter!("serve.conns_closed", 1);
}

/// Writes a reply; returns whether the connection is still usable. A write
/// that fails after the server stopped is the finalizer releasing blocked
/// connections, not a lost client reply, so it is not counted — keeping
/// `replies_failed` deterministic under seeded chaos plans.
fn send(shared: &Shared, stream: &mut TcpStream, reply: &Reply) -> bool {
    match write_frame(stream, &reply.encode()) {
        Ok(()) => true,
        Err(e) => {
            if shared.state.load(Ordering::SeqCst) != STOPPED {
                shared.stats.replies_failed.fetch_add(1, Ordering::Relaxed);
                diva_trace::counter!("serve.replies_failed", 1);
                diva_trace::event!(1, "serve.reply_failed", error = e.to_string());
            }
            false
        }
    }
}

/// Admission: write-ahead journal, bounded push (shed on overflow), wait
/// for the dispatcher's outcome, reply.
fn handle_submit(shared: &Arc<Shared>, stream: &mut TcpStream, payload: Vec<u8>) -> bool {
    if shared.state.load(Ordering::SeqCst) != RUNNING {
        shared
            .stats
            .rejected_draining
            .fetch_add(1, Ordering::Relaxed);
        return send(shared, stream, &Reply::Draining);
    }
    let id = shared.next_job.fetch_add(1, Ordering::SeqCst);
    // Write-ahead: the pending record lands before the job can run, so a
    // crash at any later point leaves either a replayable pending record
    // or a complete pending+done pair.
    if let Some(j) = &shared.journal {
        j.record_pending(id, &payload);
    }
    let responder = Responder::default();
    let job = Job {
        id,
        payload,
        responder: responder.clone(),
    };
    match shared.queue.push(job) {
        Ok(_depth) => {
            shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
            diva_trace::counter!("serve.jobs_admitted", 1);
        }
        Err(PushError::Overloaded(_)) => {
            // Shed: roll the write-ahead record back so the journal never
            // replays a job the client was told was refused.
            if let Some(j) = &shared.journal {
                j.forget(id);
            }
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            diva_trace::counter!("serve.jobs_shed", 1);
            diva_trace::event!(1, "serve.job_shed", job = id);
            let reply = Reply::Overloaded {
                queued: shared.queue.len() as u32,
                capacity: shared.queue.capacity() as u32,
            };
            return send(shared, stream, &reply);
        }
        Err(PushError::Closed(_)) => {
            if let Some(j) = &shared.journal {
                j.forget(id);
            }
            shared
                .stats
                .rejected_draining
                .fetch_add(1, Ordering::Relaxed);
            return send(shared, stream, &Reply::Draining);
        }
    }
    // Chaos: an armed conn-drop severs the socket right after admission.
    // The job still runs and journals; only the reply write can fail.
    if diva_fault::conn_drop(id) {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    let outcome = responder.wait();
    let reply = Reply::Done {
        job: id,
        status: outcome.status,
        payload: outcome.payload,
    };
    send(shared, stream, &reply)
}

/// The dispatcher: pops bounded batches and runs them under supervision.
/// Ok jobs journal their done record and fulfil their responder *inside*
/// the item (durable before acknowledged, and independent of batch
/// stragglers); non-Ok reports are reconciled after the batch.
fn dispatch_loop(shared: &Arc<Shared>) {
    while let Some(batch) = shared.queue.pop_batch(shared.cfg.batch_max) {
        diva_trace::counter!("serve.batches", 1);
        let reports = par_map_supervised(batch.len(), &shared.cfg.policy, |i| {
            let job = &batch[i];
            let value = run_job(shared.exec.as_ref(), job.id, &job.payload)?;
            if supervise::stop_observed().is_none() {
                if let Some(j) = &shared.journal {
                    j.record_done(job.id, WireStatus::Ok as u8, &value);
                }
                job.responder.fulfill(Outcome {
                    status: WireStatus::Ok,
                    payload: value.clone(),
                });
            }
            Ok(value)
        });
        for (job, report) in batch.iter().zip(reports) {
            // An item that fulfilled in-flight is Ok regardless of what
            // the supervisor decided afterwards (completion beats
            // cancellation; the client was answered with a full result).
            let status = if job.responder.is_fulfilled() {
                WireStatus::Ok
            } else {
                WireStatus::from(report.status)
            };
            let mut payload = Vec::new();
            match status {
                WireStatus::Ok => {
                    // Completion beats cancellation: a job that finished
                    // after a stop was observed skipped the in-item fulfil
                    // (stop_observed was Some), so its real result lands
                    // here instead.
                    if !job.responder.is_fulfilled() {
                        payload = report.value.clone().unwrap_or_default();
                        if let Some(j) = &shared.journal {
                            j.record_done(job.id, WireStatus::Ok as u8, &payload);
                        }
                    }
                }
                WireStatus::Cancelled => {
                    // No done record: a cancelled job stays pending in the
                    // journal and replays on restart.
                }
                other => {
                    if let Some(j) = &shared.journal {
                        j.record_done(job.id, other as u8, &[]);
                    }
                }
            }
            shared.stats.bump_status(status);
            diva_trace::counter!("serve.jobs_done", 1);
            diva_trace::event!(
                1,
                "serve.job_done",
                job = job.id,
                status = status.name(),
                attempts = report.attempts,
            );
            job.responder.fulfill(Outcome { status, payload });
        }
    }
    shared.mark_dispatch_done();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Servers in this test binary share process-global diva-par jobs and
    /// trace state; serialize them.
    pub(crate) fn lock_serve_tests() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Echo-with-checksum executor: deterministic bytes → bytes.
    struct EchoExec;

    impl JobExecutor for EchoExec {
        fn execute(&self, job: u64, payload: &[u8]) -> Result<Vec<u8>, String> {
            let mut out = diva_fault::fnv1a64(payload).to_le_bytes().to_vec();
            out.extend_from_slice(&job.to_le_bytes());
            out.extend_from_slice(payload);
            Ok(out)
        }

        fn fingerprint(&self) -> u64 {
            0xEC40
        }
    }

    #[test]
    fn serves_jobs_and_drains_cleanly() {
        let _g = lock_serve_tests();
        let server = Server::start(ServeConfig::default(), Arc::new(EchoExec)).unwrap();
        let addr = server.addr();
        let mut client = crate::client::Client::connect(addr).unwrap();
        assert_eq!(client.ping().unwrap(), Reply::Pong);
        for i in 0..5u8 {
            let reply = client.submit(vec![i; 4]).unwrap();
            match reply {
                Reply::Done {
                    status: WireStatus::Ok,
                    payload,
                    ..
                } => {
                    assert_eq!(&payload[16..], &[i; 4]);
                }
                other => panic!("expected Done/Ok, got {other:?}"),
            }
        }
        let json = client.metrics().unwrap();
        assert!(json.contains("\"server\""), "snapshot carries server state");
        drop(client);
        let report = server.shutdown(Duration::from_secs(5));
        assert!(report.clean);
        assert_eq!(report.stats.ok, 5);
        assert_eq!(report.stats.submitted, 5);
    }

    #[test]
    fn overloaded_submits_get_typed_shed_replies() {
        let _g = lock_serve_tests();
        // Capacity 1 and an executor gated shut: the first job occupies
        // the dispatcher, the second fills the queue, the rest shed.
        let gate = Arc::new(AtomicBool::new(false));
        struct GateExec(Arc<AtomicBool>);
        impl JobExecutor for GateExec {
            fn execute(&self, _job: u64, _payload: &[u8]) -> Result<Vec<u8>, String> {
                while !self.0.load(Ordering::Relaxed) {
                    if supervise::interrupted().is_some() {
                        return Err("stopped while gated".into());
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(vec![1])
            }
        }
        let cfg = ServeConfig {
            queue_capacity: 1,
            batch_max: 1,
            ..ServeConfig::default()
        };
        let server = Server::start(cfg, Arc::new(GateExec(gate.clone()))).unwrap();
        let addr = server.addr();

        // Job 0: admitted, popped by the dispatcher, blocked on the gate.
        let mut c0 = crate::client::Client::connect(addr).unwrap();
        let h0 = std::thread::spawn(move || c0.submit(vec![0]).unwrap());
        let started = Instant::now();
        while server.gate_in_flight() < 1 {
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "job 0 never started"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // Job 1: admitted, sits in the queue (capacity 1).
        let mut c1 = crate::client::Client::connect(addr).unwrap();
        let h1 = std::thread::spawn(move || c1.submit(vec![1]).unwrap());
        while server.queued() < 1 {
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "job 1 never queued"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // Jobs 2 and 3: the queue is full — typed Overloaded, immediately.
        for _ in 0..2 {
            let mut c = crate::client::Client::connect(addr).unwrap();
            match c.submit(vec![9]).unwrap() {
                Reply::Overloaded { capacity, .. } => assert_eq!(capacity, 1),
                other => panic!("expected Overloaded, got {other:?}"),
            }
        }
        gate.store(true, Ordering::Relaxed);
        assert!(matches!(
            h0.join().unwrap(),
            Reply::Done {
                status: WireStatus::Ok,
                ..
            }
        ));
        assert!(matches!(
            h1.join().unwrap(),
            Reply::Done {
                status: WireStatus::Ok,
                ..
            }
        ));
        let report = server.shutdown(Duration::from_secs(5));
        assert_eq!(report.stats.shed, 2);
        assert_eq!(report.stats.ok, 2);
    }

    #[test]
    fn draining_server_refuses_new_submits() {
        let _g = lock_serve_tests();
        let server = Server::start(ServeConfig::default(), Arc::new(EchoExec)).unwrap();
        let addr = server.addr();
        let mut client = crate::client::Client::connect(addr).unwrap();
        assert!(matches!(
            client.shutdown(2_000).unwrap(),
            Reply::ShutdownStarted { .. }
        ));
        // A submit racing the drain gets a typed refusal, from this
        // connection or a fresh one.
        let mut late = crate::client::Client::connect(addr);
        let reply = match &mut late {
            Ok(c) => c.submit(vec![1]),
            Err(_) => client.submit(vec![1]),
        };
        if let Ok(reply) = reply {
            assert!(
                matches!(reply, Reply::Draining),
                "expected Draining, got {reply:?}"
            );
        }
        let report = server.join();
        assert!(report.clean);
    }
}
