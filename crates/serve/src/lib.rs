//! diva-serve: a crash-safe, chaos-tested attack-as-a-service daemon.
//!
//! The DIVA pipeline's batch entry points (`repro attack`, diva-bench)
//! pay model-set preparation on every invocation. This crate keeps the
//! prepared victim/surrogate pair resident in a daemon and serves attack
//! jobs over a dependency-free, length-prefixed TCP protocol:
//!
//! - [`protocol`] — frame format, request/reply encoding, typed errors
//!   for oversized/truncated/garbage frames;
//! - [`queue`] — bounded admission with explicit load-shedding (a full
//!   queue answers `Overloaded`, it never grows);
//! - [`journal`] — crash-safe write-ahead job journal on
//!   `diva_fault::ckpt` (fingerprint-sealed, atomic write-rename): a
//!   killed server replays unfinished jobs byte-identically on restart;
//! - [`server`] — accept/dispatch/drain state machine; jobs execute on
//!   the diva-par pool under supervision (deadlines, seeded retry,
//!   cooperative cancellation);
//! - [`client`] — minimal blocking client, also the torture suites' way
//!   of delivering hostile bytes;
//! - [`chaos`] — the seeded fault campaign behind `serve chaos` and the
//!   CI `serve-chaos` gate.
//!
//! The executor is injected via [`server::JobExecutor`]; diva-bench
//! provides the real one (prepared model set + attack drivers), while the
//! tests here use small deterministic stand-ins. Everything observes the
//! repo's determinism rule: fault predicates and retry jitter are keyed
//! by job id and seed, never wall-clock, so a chaos campaign produces the
//! same counters under any `DIVA_JOBS` setting.

pub mod chaos;
pub mod client;
pub mod journal;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::Client;
pub use journal::{Journal, ReplaySet};
pub use protocol::{ProtocolError, Reply, Request, WireStatus};
pub use queue::{BoundedQueue, PushError};
pub use server::{DrainReport, JobExecutor, ServeConfig, Server, StatsSnapshot};
