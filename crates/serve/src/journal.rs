//! Crash-safe write-ahead job journal.
//!
//! Every job gets (up to) two records in the journal directory, each a
//! fingerprint-sealed, atomically written [`diva_fault::ckpt`] file:
//!
//! - `job-<id>-p.ckpt` — **pending**, written with the request payload
//!   *before* the job is admitted to the queue (write-ahead: if the server
//!   dies after this point, restart knows the job existed);
//! - `job-<id>-d.ckpt` — **done**, written with the terminal status and
//!   result payload *before* the client is answered (acknowledged implies
//!   durable).
//!
//! Replay is the set difference: a valid pending record with no valid done
//! record is an unfinished job and is re-executed; `Cancelled` jobs
//! intentionally never write a done record, so an aborted server replays
//! them on restart. Because the executor is deterministic bytes → bytes
//! and records carry the executor fingerprint, the replayed merge is
//! byte-identical to an uninterrupted run — the property the kill-and-
//! replay test asserts. Corrupt or mismatched records are counted and
//! rejected, never trusted.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use diva_fault::ckpt::{
    read_journal_record, write_journal_record, CkptError, JournalRecord, RecordKind,
};

/// What a journal scan found.
#[derive(Debug, Default)]
pub struct ReplaySet {
    /// Unfinished jobs (valid pending, no valid done), sorted by id, with
    /// their request payloads.
    pub pending: Vec<(u64, Vec<u8>)>,
    /// Finished jobs: id → (status code, result payload).
    pub done: BTreeMap<u64, (u8, Vec<u8>)>,
    /// Pending records rejected (corrupt or wrong fingerprint) — these
    /// jobs are lost; nothing valid remains to replay.
    pub lost: usize,
    /// Done records rejected; their jobs fall back to pending and replay.
    pub rejected_done: usize,
    /// The first job id a restarted server may assign without colliding.
    pub next_job: u64,
}

/// A journal rooted at one directory, scoped to one executor fingerprint.
#[derive(Debug, Clone)]
pub struct Journal {
    dir: PathBuf,
    fingerprint: u64,
}

impl Journal {
    /// Opens (creating if needed) the journal directory.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, fingerprint: u64) -> Result<Journal, CkptError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Journal { dir, fingerprint })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, job: u64, kind: RecordKind) -> PathBuf {
        let suffix = match kind {
            RecordKind::Pending => 'p',
            RecordKind::Done => 'd',
        };
        self.dir.join(format!("job-{job:016x}-{suffix}.ckpt"))
    }

    /// Writes the write-ahead (pending) record for `job`. Best effort: a
    /// journal that cannot write costs crash-safety for this job, not the
    /// job itself; the failure is counted and evented.
    pub fn record_pending(&self, job: u64, payload: &[u8]) {
        self.write(JournalRecord {
            job,
            kind: RecordKind::Pending,
            status: 0,
            fingerprint: self.fingerprint,
            payload: payload.to_vec(),
        });
    }

    /// Writes the terminal (done) record for `job`. Called *before* the
    /// client reply so an acknowledged result is always durable.
    pub fn record_done(&self, job: u64, status: u8, payload: &[u8]) {
        self.write(JournalRecord {
            job,
            kind: RecordKind::Done,
            status,
            fingerprint: self.fingerprint,
            payload: payload.to_vec(),
        });
    }

    fn write(&self, record: JournalRecord) {
        let path = self.path(record.job, record.kind);
        match write_journal_record(&path, &record) {
            Ok(()) => diva_trace::counter!("journal.records_written", 1),
            Err(e) => {
                diva_trace::counter!("journal.write_failed", 1);
                diva_trace::event!(
                    1,
                    "journal.write_failed",
                    job = record.job,
                    path = path.display().to_string(),
                    error = e.to_string(),
                );
            }
        }
    }

    /// Removes both records for `job` — the rollback for a shed admission
    /// whose pending record was already written ahead.
    pub fn forget(&self, job: u64) {
        let _ = std::fs::remove_file(self.path(job, RecordKind::Pending));
        let _ = std::fs::remove_file(self.path(job, RecordKind::Done));
    }

    /// Scans the directory, validating every record against the footer,
    /// the journal header, and this journal's fingerprint.
    pub fn scan(&self) -> ReplaySet {
        let mut pending: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut rejected_pending: Vec<Option<u64>> = Vec::new();
        let mut out = ReplaySet::default();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(_) => return out,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.starts_with("job-") || !name.ends_with(".ckpt") {
                continue;
            }
            match self.load(&path) {
                Ok(rec) => {
                    out.next_job = out.next_job.max(rec.job + 1);
                    match rec.kind {
                        RecordKind::Pending => {
                            pending.insert(rec.job, rec.payload);
                        }
                        RecordKind::Done => {
                            out.done.insert(rec.job, (rec.status, rec.payload));
                        }
                    }
                }
                Err(e) => {
                    let done = name.ends_with("-d.ckpt");
                    if done {
                        out.rejected_done += 1;
                        diva_trace::counter!("journal.done_rejected", 1);
                    } else {
                        rejected_pending.push(job_id_from_name(&name));
                        diva_trace::counter!("journal.pending_rejected", 1);
                    }
                    diva_trace::event!(
                        1,
                        "journal.record_rejected",
                        path = path.display().to_string(),
                        reason = e.to_string(),
                    );
                }
            }
        }
        // A job whose pending record was rejected is only *lost* if no
        // valid done record finished it — otherwise nothing needed
        // replaying in the first place.
        out.lost = rejected_pending
            .iter()
            .filter(|id| !matches!(id, Some(j) if out.done.contains_key(j)))
            .count();
        out.pending = pending
            .into_iter()
            .filter(|(job, _)| !out.done.contains_key(job))
            .collect();
        out
    }

    fn load(&self, path: &Path) -> Result<JournalRecord, CkptError> {
        let rec = read_journal_record(path)?;
        if rec.fingerprint != self.fingerprint {
            return Err(CkptError::Format(format!(
                "fingerprint mismatch: record {:#018x}, journal {:#018x}",
                rec.fingerprint, self.fingerprint
            )));
        }
        Ok(rec)
    }

    /// Fsyncs the journal directory — the drain-time flush that makes the
    /// final batch of renames durable.
    pub fn sync(&self) {
        if let Ok(dir) = std::fs::File::open(&self.dir) {
            let _ = dir.sync_all();
        }
    }
}

/// Parses the job id out of a `job-<16 hex digits>-?.ckpt` filename, for
/// classifying records too corrupt to decode.
fn job_id_from_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("job-")?.get(..16)?;
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("diva_serve_journal_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn scan_splits_finished_from_unfinished() {
        let dir = tmp_dir("split");
        let j = Journal::open(&dir, 0xABCD).unwrap();
        j.record_pending(0, b"req0");
        j.record_pending(1, b"req1");
        j.record_pending(2, b"req2");
        j.record_done(0, 0, b"res0");
        let scan = j.scan();
        assert_eq!(scan.done.len(), 1);
        assert_eq!(scan.done.get(&0), Some(&(0u8, b"res0".to_vec())));
        assert_eq!(
            scan.pending,
            vec![(1, b"req1".to_vec()), (2, b"req2".to_vec())],
            "unfinished jobs replay in id order"
        );
        assert_eq!(scan.next_job, 3);
        assert_eq!((scan.lost, scan.rejected_done), (0, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn forget_rolls_back_a_shed_admission() {
        let dir = tmp_dir("forget");
        let j = Journal::open(&dir, 1).unwrap();
        j.record_pending(5, b"shed me");
        j.forget(5);
        let scan = j.scan();
        assert!(scan.pending.is_empty());
        assert_eq!(scan.next_job, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_done_record_falls_back_to_replay() {
        let dir = tmp_dir("corrupt_done");
        let j = Journal::open(&dir, 9).unwrap();
        j.record_pending(4, b"req4");
        j.record_done(4, 0, b"res4");
        // Flip a byte in the done record on disk: the footer must reject
        // it and the job must fall back to pending.
        let done_path = j.path(4, RecordKind::Done);
        let mut bytes = std::fs::read(&done_path).unwrap();
        bytes[3] ^= 0x10;
        std::fs::write(&done_path, &bytes).unwrap();
        let scan = j.scan();
        assert_eq!(scan.rejected_done, 1);
        assert_eq!(scan.pending, vec![(4, b"req4".to_vec())]);
        assert!(scan.done.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_fingerprint_rejects_records() {
        let dir = tmp_dir("fingerprint");
        let j = Journal::open(&dir, 1).unwrap();
        j.record_pending(0, b"req");
        let stale = Journal::open(&dir, 2).unwrap();
        let scan = stale.scan();
        assert!(scan.pending.is_empty());
        assert_eq!(scan.lost, 1, "mismatched pending is lost, not replayed");
        std::fs::remove_dir_all(&dir).ok();
    }
}
