//! Minimal blocking client for the diva-serve wire protocol.
//!
//! One request, one reply, in order, over a plain `TcpStream` — the same
//! dependency-free framing as the server. `repro attack --remote` and the
//! test suites both drive the daemon through this type; the torture suite
//! additionally uses [`Client::send_raw_frame`] to deliver malformed bytes
//! on purpose.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{read_frame, write_frame, ProtocolError, Reply, Request, DEFAULT_MAX_FRAME};

/// A connected client. Each request blocks until its reply frame arrives.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the connection cannot be established.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Like [`connect`](Client::connect), retrying until the server starts
    /// accepting or the timeout elapses — for tests that race a restart.
    ///
    /// # Errors
    ///
    /// Returns the last connection error once the timeout is spent.
    pub fn connect_within(addr: SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Caps how large a reply frame this client will accept.
    pub fn set_max_frame(&mut self, max: usize) {
        self.max_frame = max;
    }

    /// Bounds how long a blocking read waits for a reply. `None` waits
    /// forever (the default).
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the socket option cannot be set.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Reply, ProtocolError> {
        write_frame(&mut self.stream, &request.encode())?;
        let frame = read_frame(&mut self.stream, self.max_frame)?;
        Reply::decode(&frame)
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on transport or framing failure.
    pub fn ping(&mut self) -> Result<Reply, ProtocolError> {
        self.roundtrip(&Request::Ping)
    }

    /// Submits a job and blocks until its terminal reply: `Done`,
    /// `Overloaded`, `Draining`, or `Rejected`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on transport or framing failure.
    pub fn submit(&mut self, payload: Vec<u8>) -> Result<Reply, ProtocolError> {
        self.roundtrip(&Request::Submit { payload })
    }

    /// Fetches the metrics snapshot as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on transport or framing failure, or
    /// `Malformed` when the server answers with anything but `Metrics`.
    pub fn metrics(&mut self) -> Result<String, ProtocolError> {
        match self.roundtrip(&Request::Metrics)? {
            Reply::Metrics { json } => Ok(json),
            other => Err(ProtocolError::Malformed(format!(
                "expected Metrics reply, got {other:?}"
            ))),
        }
    }

    /// Asks the server to begin a graceful drain with the given budget.
    /// The reply (`ShutdownStarted`) arrives before the drain completes.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on transport or framing failure.
    pub fn shutdown(&mut self, timeout_ms: u64) -> Result<Reply, ProtocolError> {
        self.roundtrip(&Request::Shutdown { timeout_ms })
    }

    /// Writes `payload` as one frame without any encoding — the torture
    /// suite's hook for sending garbage — then reads back one reply frame.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on transport failure or when the server
    /// closes the connection instead of replying.
    pub fn send_raw_frame(&mut self, payload: &[u8]) -> Result<Reply, ProtocolError> {
        write_frame(&mut self.stream, payload)?;
        let frame = read_frame(&mut self.stream, self.max_frame)?;
        Reply::decode(&frame)
    }

    /// Writes raw bytes on the socket with no length prefix at all — for
    /// torturing the framing layer itself (truncated prefixes, oversized
    /// declarations).
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the write fails.
    pub fn send_raw_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        use std::io::Write;
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one reply frame without sending anything first.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on transport or framing failure.
    pub fn read_reply(&mut self) -> Result<Reply, ProtocolError> {
        let frame = read_frame(&mut self.stream, self.max_frame)?;
        Reply::decode(&frame)
    }
}
