//! CI gate: run the seeded chaos campaign at two worker counts and demand
//! identical, expected counters plus a byte-identical replayed journal.
//!
//! ```text
//! serve_chaos [--seed N] [--dir PATH] [--jobs a,b,...]
//! ```
//!
//! Exits non-zero (with a greppable `serve-chaos FAIL` line) on any
//! deviation. The journal directories and final metrics snapshots are left
//! under `--dir` for artifact upload.

use std::path::PathBuf;

use diva_serve::chaos::run_matrix;

fn fail(msg: &str) -> ! {
    eprintln!("serve-chaos FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut seed: u64 = 0xD1BA_5EED;
    let mut dir = PathBuf::from("target/serve-chaos");
    let mut jobs: Vec<usize> = vec![1, 4];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed must be a u64"));
            }
            "--dir" => dir = PathBuf::from(value("--dir")),
            "--jobs" => {
                jobs = value("--jobs")
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| fail("--jobs must be a comma list of usize"))
                    })
                    .collect();
            }
            other => fail(&format!("unknown argument {other}")),
        }
    }

    let reports = run_matrix(&dir, seed, &jobs).unwrap_or_else(|e| fail(&e));
    for (j, report) in &reports {
        let s = &report.stats_run;
        println!(
            "serve-chaos jobs={j} submitted={} ok={} shed={} timed_out={} \
             quarantined={} cancelled={} replies_failed={}",
            s.submitted, s.ok, s.shed, s.timed_out, s.quarantined, s.cancelled, s.replies_failed
        );
        println!(
            "serve-chaos jobs={j} replay pending={:?} rejected_done={} replayed={} \
             clean={} byte_identical={}",
            report.replay_pending,
            report.rejected_done,
            report.stats_replay.replayed,
            report.replay_clean,
            report.merge_byte_identical
        );
    }
    println!("serve-chaos PASS seed={seed} jobs={jobs:?} (deterministic across worker counts)");
}
