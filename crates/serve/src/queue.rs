//! Bounded admission queue with explicit load-shedding.
//!
//! The server never buffers unboundedly: [`BoundedQueue::push`] either
//! admits within the fixed capacity or returns the item to the caller as
//! [`PushError::Overloaded`], which the connection handler converts into a
//! typed `Overloaded` reply. Shedding at admission (rather than timing out
//! deep in the pipeline) keeps the latency of rejection constant no matter
//! how far behind the executor is.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push did not enqueue. The item comes back to the caller — nothing
/// is silently dropped.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; shed the item.
    Overloaded(T),
    /// The queue is closed (drain has begun); refuse the item.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue: non-blocking bounded push, blocking batch
/// pop. Closing wakes poppers; items queued before the close still drain.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Admits `item` if there is room, returning the depth after the push.
    /// Never blocks: a full queue sheds ([`PushError::Overloaded`]), a
    /// closed queue refuses ([`PushError::Closed`]).
    ///
    /// # Errors
    ///
    /// Returns the item back inside the error so the caller can report it.
    pub fn push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut s = self.lock();
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Overloaded(item));
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until at least one item is available (or the queue is closed
    /// and empty), then drains up to `max` items. Returns `None` only at
    /// end of stream: closed *and* empty.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let max = max.max(1);
        let mut s = self.lock();
        loop {
            if !s.items.is_empty() {
                let take = s.items.len().min(max);
                return Some(s.items.drain(..take).collect());
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: future pushes refuse, poppers drain what is left
    /// and then see end of stream.
    pub fn close(&self) {
        let mut s = self.lock();
        s.closed = true;
        drop(s);
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn push_sheds_at_capacity_and_refuses_after_close() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1).unwrap(), 1);
        assert_eq!(q.push(2).unwrap(), 2);
        match q.push(3) {
            Err(PushError::Overloaded(item)) => assert_eq!(item, 3),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        q.close();
        match q.push(4) {
            Err(PushError::Closed(item)) => assert_eq!(item, 4),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn close_drains_queued_items_then_ends_the_stream() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        q.close();
        assert_eq!(q.pop_batch(3), Some(vec![0, 1, 2]));
        assert_eq!(q.pop_batch(3), Some(vec![3, 4]));
        assert_eq!(q.pop_batch(3), None, "closed and empty = end of stream");
    }

    #[test]
    fn blocked_pop_wakes_on_push_and_on_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = q.clone();
        let popper = std::thread::spawn(move || {
            let first = q2.pop_batch(4);
            let second = q2.pop_batch(4);
            (first, second)
        });
        std::thread::sleep(Duration::from_millis(20));
        q.push(9).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        let (first, second) = popper.join().unwrap();
        assert_eq!(first, Some(vec![9]));
        assert_eq!(second, None);
    }
}
