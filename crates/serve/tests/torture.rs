//! Loopback protocol torture suite: hostile bytes, vanishing clients, and
//! repeated shutdowns must all be answered with typed errors — never a
//! wedged server, never a leaked worker.
//!
//! Trace counters and the diva-par pool are process-global, so every test
//! takes the same lock and measures counters as deltas.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use diva_serve::chaos::ChaosExec;
use diva_serve::protocol::{read_frame, Reply, Request};
use diva_serve::{Client, ServeConfig, Server};

fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    // Counters only record at trace level >= 1; several tests here assert
    // on them.
    diva_trace::set_level(1);
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

fn pure_exec(seed: u64) -> Arc<ChaosExec> {
    Arc::new(ChaosExec {
        gate: Arc::new(AtomicBool::new(true)),
        seed,
    })
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Asserts the server is still fully functional: a fresh connection can
/// ping and run a job end to end.
fn assert_alive(addr: std::net::SocketAddr) {
    let mut c = Client::connect(addr).expect("server accepts fresh connections");
    assert_eq!(c.ping().unwrap(), Reply::Pong);
    match c.submit(b"n probe".to_vec()).unwrap() {
        Reply::Done { status, .. } => assert_eq!(status, diva_serve::WireStatus::Ok),
        other => panic!("probe job failed: {other:?}"),
    }
}

#[test]
fn oversized_frame_gets_a_typed_rejection_and_spares_the_server() {
    let _g = lock();
    let cfg = ServeConfig {
        max_frame: 1024,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, pure_exec(1)).unwrap();
    let addr = server.addr();
    let before = server.stats().frames_rejected;

    let mut c = Client::connect(addr).unwrap();
    // The declared length crosses the limit before a single payload byte
    // is read, so the rejection must be immediate (no allocation, no
    // draining of the oversized body).
    match c.send_raw_frame(&vec![0u8; 4096]) {
        Ok(Reply::Rejected { message }) => {
            assert!(message.contains("oversized"), "got: {message}");
        }
        other => panic!("expected Rejected reply, got {other:?}"),
    }
    wait_until("rejection counted", || {
        server.stats().frames_rejected == before + 1
    });
    assert_alive(addr);
    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean);
}

#[test]
fn truncated_length_prefix_is_rejected_without_wedging_the_server() {
    let _g = lock();
    let server = Server::start(ServeConfig::default(), pure_exec(2)).unwrap();
    let addr = server.addr();
    let before = server.stats().frames_rejected;

    // Half a length prefix, then EOF on the write half: mid-prefix
    // truncation.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&[0x10, 0x00]).unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    match read_frame(&mut raw, 1 << 20).map(|f| Reply::decode(&f)) {
        Ok(Ok(Reply::Rejected { message })) => {
            assert!(message.contains("truncated"), "got: {message}");
        }
        other => panic!("expected Rejected reply, got {other:?}"),
    }

    // A full prefix declaring more bytes than ever arrive: mid-payload
    // truncation, with the exact shortfall named.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&100u32.to_le_bytes()).unwrap();
    raw.write_all(&[0xAB; 10]).unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    match read_frame(&mut raw, 1 << 20).map(|f| Reply::decode(&f)) {
        Ok(Ok(Reply::Rejected { message })) => {
            assert!(message.contains("truncated"), "got: {message}");
        }
        other => panic!("expected Rejected reply, got {other:?}"),
    }

    wait_until("both truncations counted", || {
        server.stats().frames_rejected == before + 2
    });
    assert_alive(addr);
    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean);
}

#[test]
fn garbage_payload_is_rejected_but_the_connection_survives() {
    let _g = lock();
    let server = Server::start(ServeConfig::default(), pure_exec(3)).unwrap();
    let addr = server.addr();

    let mut c = Client::connect(addr).unwrap();
    // 0xFF: unknown tag; empty: no tag at all; 0x02: a Submit with its
    // payload length missing.
    for garbage in [&[0xFFu8, 0xEE, 0xDD][..], &[], &[0x02]] {
        match c.send_raw_frame(garbage) {
            Ok(Reply::Rejected { .. }) => {}
            other => panic!("expected Rejected for {garbage:?}, got {other:?}"),
        }
    }
    // Unlike a framing error, a decode error leaves the frame boundary
    // intact — the same connection keeps working.
    assert_eq!(c.ping().unwrap(), Reply::Pong);
    assert!(server.stats().frames_rejected >= 3);
    assert_alive(addr);
    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean);
}

#[test]
fn mid_job_client_disconnect_loses_only_the_reply() {
    let _g = lock();
    let server = Server::start(ServeConfig::default(), pure_exec(4)).unwrap();
    let addr = server.addr();
    let ok_before = server.stats().ok;

    // Fire a submit and vanish without reading the reply.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let frame = Request::Submit {
            payload: b"n orphan".to_vec(),
        }
        .encode();
        raw.write_all(&(frame.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(&frame).unwrap();
    } // dropped: connection gone while the job is (or will be) running

    // The job still runs to completion and journals nothing less than a
    // connected client's would; only the reply write can fail.
    wait_until("orphaned job completes", || {
        server.stats().ok == ok_before + 1
    });
    assert_alive(addr);

    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean);
    assert_eq!(report.stats.ok, ok_before + 2, "orphan + liveness probe");
}

#[test]
fn double_shutdown_is_idempotent_and_drains_once() {
    let _g = lock();
    let drains_before = diva_trace::counter_value("serve.drains");
    // A gated blocker keeps the drain in progress so the second shutdown
    // request demonstrably lands on an already-draining server.
    let gate = Arc::new(AtomicBool::new(false));
    let exec = Arc::new(ChaosExec {
        gate: gate.clone(),
        seed: 5,
    });
    let server = Server::start(ServeConfig::default(), exec).unwrap();
    let addr = server.addr();

    let blocker = {
        let mut c = Client::connect(addr).unwrap();
        std::thread::spawn(move || c.submit(b"b held".to_vec()))
    };
    wait_until("blocker in flight", || server.gate_in_flight() >= 1);

    let mut c = Client::connect(addr).unwrap();
    assert!(matches!(
        c.shutdown(10_000).unwrap(),
        Reply::ShutdownStarted { .. }
    ));
    // Second remote shutdown on the same connection: a typed reply, not a
    // hang and not a second drain.
    assert!(matches!(
        c.shutdown(10_000).unwrap(),
        Reply::ShutdownStarted { .. }
    ));
    // A local shutdown racing the remote one is equally a no-op.
    server.begin_shutdown(Duration::from_secs(10));

    gate.store(true, Ordering::Relaxed);
    let _ = blocker.join();
    let report = server.join();
    assert!(report.clean);
    assert_eq!(report.stats.ok, 1, "the held job finished inside the drain");
    assert_eq!(
        diva_trace::counter_value("serve.drains"),
        drains_before + 1,
        "exactly one drain ran"
    );
}

#[test]
fn tortured_server_leaves_the_pool_quiescent() {
    let _g = lock();
    let server = Server::start(ServeConfig::default(), pure_exec(6)).unwrap();
    let addr = server.addr();

    // A burst of good jobs interleaved with hostile frames.
    for i in 0..4u8 {
        let mut c = Client::connect(addr).unwrap();
        assert!(matches!(
            c.submit(vec![b'n', i]).unwrap(),
            Reply::Done { .. }
        ));
        let mut bad = Client::connect(addr).unwrap();
        let _ = bad.send_raw_frame(&[0xFF, i]);
    }
    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean);
    assert_eq!(report.stats.ok, 4);

    // No leaked workers: the drain gate counts zero in-flight items and
    // every connection handler that opened also closed.
    wait_until("connection handlers exited", || {
        diva_trace::counter_value("serve.conns_opened")
            == diva_trace::counter_value("serve.conns_closed")
    });
}
