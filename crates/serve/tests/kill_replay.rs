//! Kill-and-replay: a server hard-aborted mid-batch must, after a restart
//! against the same journal directory, converge on exactly the results an
//! uninterrupted serial run produces — byte for byte.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use diva_serve::chaos::ChaosExec;
use diva_serve::protocol::Reply;
use diva_serve::{Client, JobExecutor, Journal, ServeConfig, Server};

const SEED: u64 = 0xBEEF;
const N: usize = 8;
const BLOCKER: usize = 3;

fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diva_serve_killreplay_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Payload for job `i`; index [`BLOCKER`] blocks until the executor gate
/// opens, everything else completes immediately. Identical across the
/// reference and the killed run — only the gate differs.
fn payload(i: usize) -> Vec<u8> {
    if i == BLOCKER {
        format!("b job{i}").into_bytes()
    } else {
        format!("n job{i}").into_bytes()
    }
}

fn config(dir: &Path) -> ServeConfig {
    ServeConfig {
        queue_capacity: 2 * N, // never shed in this test
        batch_max: 2,
        journal_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    }
}

fn exec(gate_open: bool) -> Arc<ChaosExec> {
    Arc::new(ChaosExec {
        gate: Arc::new(AtomicBool::new(gate_open)),
        seed: SEED,
    })
}

/// Scans a journal directory into `job -> (status, bytes)`.
fn done_map(dir: &Path) -> BTreeMap<u64, (u8, Vec<u8>)> {
    Journal::open(dir, exec(true).fingerprint())
        .unwrap()
        .scan()
        .done
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn killed_server_replays_to_a_byte_identical_merge() {
    let _g = lock();

    // Reference: an uninterrupted serial run (one job at a time, gate
    // open so the "blocker" payload is just another job).
    let ref_dir = tmp_dir("reference");
    let server = Server::start(config(&ref_dir), exec(true)).unwrap();
    let addr = server.addr();
    let mut c = Client::connect(addr).unwrap();
    for i in 0..N {
        match c.submit(payload(i)).unwrap() {
            Reply::Done { job, status, .. } => {
                assert_eq!(job, i as u64, "serial submits get sequential ids");
                assert_eq!(status, diva_serve::WireStatus::Ok);
            }
            other => panic!("reference job {i} failed: {other:?}"),
        }
    }
    drop(c);
    assert!(server.shutdown(Duration::from_secs(10)).clean);
    let reference = done_map(&ref_dir);
    assert_eq!(reference.len(), N);

    // Killed run: same payloads, but the blocker wedges the dispatcher
    // mid-batch and the server is hard-aborted with work outstanding.
    let dir = tmp_dir("killed");
    let server = Server::start(config(&dir), exec(false)).unwrap();
    let addr = server.addr();
    let mut handles = Vec::new();
    for i in 0..N {
        // Serialize admission so job ids match payload indices like the
        // reference run's serial submits did.
        let admitted = server.stats().submitted;
        let mut c = Client::connect(addr).unwrap();
        handles.push(std::thread::spawn(move || c.submit(payload(i))));
        wait_until("job admitted", || server.stats().submitted == admitted + 1);
    }
    wait_until("blocker in flight", || server.gate_in_flight() >= 1);
    let report = server.abort();
    for h in handles {
        // Some clients get Done/Cancelled, some lose their connection to
        // the abort — both are expected here.
        let _ = h.join();
    }
    assert!(
        report.stats.cancelled >= 1,
        "the abort must have caught jobs mid-flight: {:?}",
        report.stats
    );
    let interrupted = done_map(&dir);
    assert!(
        interrupted.len() < N,
        "the abort must have left unfinished jobs ({} done)",
        interrupted.len()
    );

    // Restart on the same journal: the unfinished jobs replay at startup
    // (gate open now — the stall condition cleared with the old process).
    let server = Server::start(config(&dir), exec(true)).unwrap();
    let replayed = server.stats().replayed;
    assert_eq!(
        replayed as usize,
        N - interrupted.len(),
        "exactly the unfinished jobs replay"
    );
    assert!(server.shutdown(Duration::from_secs(10)).clean);

    // The merged journal is byte-identical to the uninterrupted run.
    let merged = done_map(&dir);
    assert_eq!(merged, reference, "replayed merge must be byte-identical");

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}
