//! `diva-repro` — facade crate for the DIVA (MLSys 2022) reproduction.
//!
//! Re-exports every subsystem crate under one roof so the examples and
//! integration tests can `use diva_repro::...`. See the repository README and
//! DESIGN.md for the architecture, and `crates/core` for the attack itself.

pub use diva_core as core;
pub use diva_data as data;
pub use diva_distill as distill;
pub use diva_metrics as metrics;
pub use diva_models as models;
pub use diva_nn as nn;
pub use diva_prune as prune;
pub use diva_quant as quant;
pub use diva_tensor as tensor;
