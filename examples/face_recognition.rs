//! The §6 case study in miniature: attack a face-identification model whose
//! int8 engine plays the security camera, including the targeted variant.
//!
//! ```sh
//! cargo run --release --example face_recognition
//! ```

use diva_repro::core::attack::{diva_attack, diva_targeted_attack, pgd_attack, AttackCfg};
use diva_repro::core::pipeline::evaluate_attack;
use diva_repro::data::faces::{synth_faces, FacesCfg};
use diva_repro::data::select_validation;
use diva_repro::metrics::dssim;
use diva_repro::models::face_net;
use diva_repro::nn::train::{evaluate, gather, train_classifier, TrainCfg};
use diva_repro::nn::Infer;
use diva_repro::quant::{Int8Engine, QatNetwork, QuantCfg};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let faces = FacesCfg {
        identities: 12,
        noise: 0.06,
    };
    println!("enrolling {} identities ...", faces.identities);
    let train = synth_faces(faces.identities * 60, &faces, 77);
    let val = synth_faces(faces.identities * 8, &faces, 77);

    let mut original = face_net(faces.identities, &mut rng);
    let tcfg = TrainCfg {
        epochs: 12,
        batch_size: 32,
        lr: 0.02,
        momentum: 0.9,
        weight_decay: 1e-4,
    };
    train_classifier(&mut original, &train.images, &train.labels, &tcfg, &mut rng);
    // Converge with a decayed second phase (same recipe as the case study).
    train_classifier(
        &mut original,
        &train.images,
        &train.labels,
        &TrainCfg {
            epochs: 4,
            lr: 0.005,
            ..tcfg
        },
        &mut rng,
    );

    let mut qat = QatNetwork::new(original.clone(), QuantCfg::default());
    qat.calibrate(&train.images);
    qat.train_qat(
        &train.images,
        &train.labels,
        &TrainCfg {
            epochs: 2,
            lr: 0.004,
            ..tcfg
        },
        &mut rng,
    );
    let camera = Int8Engine::from_qat(&qat); // the edge device

    println!(
        "original acc {:.1}% / camera (int8) acc {:.1}%",
        100.0 * evaluate(&original, &val.images, &val.labels),
        100.0 * evaluate(&camera, &val.images, &val.labels),
    );

    let attack_set = select_validation(&val, &[&original, &qat, &camera], 3);
    println!("attacking {} photos ...", attack_set.len());
    let atk = AttackCfg::paper_default();
    for name in ["PGD", "DIVA"] {
        let adv = match name {
            "PGD" => pgd_attack(&qat, &attack_set.images, &attack_set.labels, &atk),
            _ => diva_attack(
                &original,
                &qat,
                &attack_set.images,
                &attack_set.labels,
                1.0,
                &atk,
            ),
        };
        let counts = evaluate_attack(&original, &camera, &adv, &attack_set.labels);
        let max_d = (0..attack_set.len())
            .map(|i| dssim(&attack_set.images.index_batch(i), &adv.index_batch(i)))
            .fold(0.0f32, f32::max);
        println!(
            "  {name}: camera misidentifies {:5.1}%   evasive success {:5.1}%   max DSSIM {:.5}",
            100.0 * counts.attack_only_rate(),
            100.0 * counts.top1_rate(),
            max_d,
        );
    }

    // Targeted: make the camera see a *specific* other person.
    if !attack_set.is_empty() {
        let x = gather(&attack_set.images, &[0]);
        let who = attack_set.labels[0];
        let target = (who + 1) % faces.identities;
        let adv = diva_targeted_attack(
            &original,
            &qat,
            &x,
            &[who],
            target,
            1.0,
            4.0,
            &AttackCfg::with_steps(30),
        );
        println!(
            "\ntargeted: person {who} presented; camera says person {} (wanted {target}), \
             server still says person {}",
            camera.predict(&adv)[0],
            original.predict(&adv)[0],
        );
    }
}
