//! DIVA generalizes beyond quantization: attacking a *pruned* edge model
//! (§5.6), including the pruned-then-quantized combination.
//!
//! ```sh
//! cargo run --release --example pruning_attack
//! ```

use diva_repro::core::attack::{diva_attack, pgd_attack, AttackCfg};
use diva_repro::core::pipeline::evaluate_attack;
use diva_repro::data::imagenet::{synth_imagenet, ImagenetCfg};
use diva_repro::data::select_validation;
use diva_repro::metrics::instability;
use diva_repro::models::{Architecture, ModelCfg};
use diva_repro::nn::train::{train_classifier, TrainCfg};
use diva_repro::prune::{prune_with_finetune, sparse_size_ratio, PruneCfg};
use diva_repro::quant::{QatNetwork, QuantCfg};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let data_cfg = ImagenetCfg::default();
    let train = synth_imagenet(1024, &data_cfg, 30);
    let val = synth_imagenet(512, &data_cfg, 31);

    println!("training the original model ...");
    let mut original =
        Architecture::DenseNet.build(&ModelCfg::standard(train.num_classes), &mut rng);
    let tcfg = TrainCfg {
        epochs: 14,
        batch_size: 32,
        lr: 0.02,
        momentum: 0.9,
        weight_decay: 1e-4,
    };
    train_classifier(&mut original, &train.images, &train.labels, &tcfg, &mut rng);
    train_classifier(
        &mut original,
        &train.images,
        &train.labels,
        &TrainCfg {
            epochs: 6,
            lr: 0.005,
            ..tcfg.clone()
        },
        &mut rng,
    );

    println!("pruning to 2/3 sparsity with fine-tuning ...");
    let mut pruned = original.clone();
    prune_with_finetune(
        &mut pruned,
        &train.images,
        &train.labels,
        &PruneCfg::default(),
        &TrainCfg {
            epochs: 6,
            lr: 0.005,
            ..tcfg.clone()
        },
        &mut rng,
    );
    println!(
        "  sparse-storage size: {:.0}% of dense fp32",
        100.0 * sparse_size_ratio(&pruned)
    );

    println!("then quantizing the pruned model (pruned+quantized variant) ...");
    let mut pq = QatNetwork::new(pruned.clone(), QuantCfg::default());
    pq.calibrate(&train.images);
    pq.train_qat(
        &train.images,
        &train.labels,
        &TrainCfg {
            epochs: 2,
            lr: 0.004,
            ..tcfg
        },
        &mut rng,
    );

    let (_, _, inst) = instability(&original, &pruned, &val.images, &val.labels);
    println!("  original-vs-pruned instability: {:.1}%", 100.0 * inst);

    let atk = AttackCfg::paper_default();
    // Pruned (fp32, sparse) edge model.
    let set = select_validation(&val, &[&original, &pruned], 4);
    println!("\nattacks on the pruned model ({} images):", set.len());
    for name in ["PGD", "DIVA"] {
        let adv = match name {
            "PGD" => pgd_attack(&pruned, &set.images, &set.labels, &atk),
            _ => diva_attack(&original, &pruned, &set.images, &set.labels, 1.0, &atk),
        };
        let counts = evaluate_attack(&original, &pruned, &adv, &set.labels);
        println!(
            "  {name}: evasive success {:5.1}%   server fooled {:5.1}%",
            100.0 * counts.top1_rate(),
            100.0 * counts.original_fooled_rate(),
        );
    }
    // Pruned + quantized edge model.
    let set = select_validation(&val, &[&original, &pq], 4);
    println!(
        "\nattacks on the pruned+quantized model ({} images):",
        set.len()
    );
    for name in ["PGD", "DIVA"] {
        let adv = match name {
            "PGD" => pgd_attack(&pq, &set.images, &set.labels, &atk),
            _ => diva_attack(&original, &pq, &set.images, &set.labels, 1.0, &atk),
        };
        let counts = evaluate_attack(&original, &pq, &adv, &set.labels);
        println!(
            "  {name}: evasive success {:5.1}%   server fooled {:5.1}%",
            100.0 * counts.top1_rate(),
            100.0 * counts.original_fooled_rate(),
        );
    }
}
