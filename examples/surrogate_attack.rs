//! Semi-blackbox and blackbox DIVA: attacking with *surrogate* models
//! reconstructed from a deployed int8 engine (§4.3/§4.4).
//!
//! The attacker here never touches the victim's fp32 weights or training
//! data: they pull the int8 model off a device, recover a differentiable
//! copy, distill surrogates on their own data, and attack through those.
//!
//! ```sh
//! cargo run --release --example surrogate_attack
//! ```

use diva_repro::core::attack::{diva_attack, AttackCfg};
use diva_repro::core::pipeline::{evaluate_attack, prepare_blackbox, prepare_semi_blackbox};
use diva_repro::data::imagenet::{synth_imagenet, ImagenetCfg};
use diva_repro::data::select_validation;
use diva_repro::distill::{agreement, DistillCfg};
use diva_repro::models::{Architecture, ModelCfg};
use diva_repro::nn::train::{train_classifier, TrainCfg};
use diva_repro::quant::{Int8Engine, QatNetwork, QuantCfg};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2);
    let data_cfg = ImagenetCfg::default();

    // --- victim side ------------------------------------------------------
    println!("[victim] training + adapting ...");
    let victim_train = synth_imagenet(1024, &data_cfg, 20);
    let model_cfg = ModelCfg::standard(victim_train.num_classes);
    let mut original = Architecture::ResNet.build(&model_cfg, &mut rng);
    let tcfg = TrainCfg {
        epochs: 14,
        batch_size: 32,
        lr: 0.02,
        momentum: 0.9,
        weight_decay: 1e-4,
    };
    train_classifier(
        &mut original,
        &victim_train.images,
        &victim_train.labels,
        &tcfg,
        &mut rng,
    );
    train_classifier(
        &mut original,
        &victim_train.images,
        &victim_train.labels,
        &TrainCfg {
            epochs: 6,
            lr: 0.005,
            ..tcfg.clone()
        },
        &mut rng,
    );
    let mut qat = QatNetwork::new(original.clone(), QuantCfg::default());
    qat.calibrate(&victim_train.images);
    qat.train_qat(
        &victim_train.images,
        &victim_train.labels,
        &TrainCfg {
            epochs: 2,
            lr: 0.004,
            ..tcfg.clone()
        },
        &mut rng,
    );
    // This is all the attacker can physically obtain: the deployed engine.
    let deployed = Int8Engine::from_qat(&qat);

    // --- attacker side ----------------------------------------------------
    // Disjoint attacker-held data (different seed => different images).
    let attacker_data = synth_imagenet(512, &data_cfg, 21);
    let distill_cfg = DistillCfg::default();
    let surr_train = TrainCfg {
        epochs: 6,
        batch_size: 32,
        lr: 0.01,
        momentum: 0.9,
        weight_decay: 0.0,
    };

    println!("[attacker] semi-blackbox: extract engine + distill surrogate original ...");
    let semi = prepare_semi_blackbox(
        &deployed,
        original.graph(),
        &attacker_data.images,
        &distill_cfg,
        &surr_train,
        &mut rng,
    );
    println!(
        "  surrogate/teacher agreement: {:.1}%",
        100.0 * agreement(&semi.surrogate_original, &deployed, &attacker_data.images)
    );

    println!("[attacker] blackbox: distill surrogate pair from query access ...");
    let fresh = Architecture::ResNet.build(&model_cfg, &mut rng);
    let black = prepare_blackbox(
        &deployed,
        fresh,
        &attacker_data.images,
        &distill_cfg,
        &surr_train,
        QuantCfg::default(),
        &mut rng,
    );

    // --- evaluation against the TRUE models --------------------------------
    let val = synth_imagenet(512, &data_cfg, 22);
    let attack_set = select_validation(&val, &[&original, &qat], 4);
    println!(
        "[eval] attacking {} mutually-correct images",
        attack_set.len()
    );
    let atk = AttackCfg::paper_default();

    let settings: [(&str, &diva_repro::nn::Network, &QatNetwork); 3] = [
        ("whitebox      ", &original, &qat),
        (
            "semi-blackbox ",
            &semi.surrogate_original,
            &semi.recovered_adapted,
        ),
        (
            "blackbox      ",
            &black.surrogate_original,
            &black.surrogate_adapted,
        ),
    ];
    for (name, grad_orig, grad_adapted) in settings {
        let adv = diva_attack(
            grad_orig,
            grad_adapted,
            &attack_set.images,
            &attack_set.labels,
            1.0,
            &atk,
        );
        let counts = evaluate_attack(&original, &qat, &adv, &attack_set.labels);
        println!(
            "  DIVA {name}: evasive success {:5.1}%   server fooled {:5.1}%",
            100.0 * counts.top1_rate(),
            100.0 * counts.original_fooled_rate(),
        );
    }
    println!("\nLess attacker knowledge => lower (but still substantial) evasive success.");
}
