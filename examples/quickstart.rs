//! Quickstart: train a small model, quantize it for the "edge", and launch
//! the DIVA evasive attack — in about a minute on a laptop core.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use diva_repro::core::attack::{diva_attack, pgd_attack, AttackCfg};
use diva_repro::core::pipeline::evaluate_attack;
use diva_repro::data::imagenet::{synth_imagenet, ImagenetCfg};
use diva_repro::data::select_validation;
use diva_repro::models::{Architecture, ModelCfg};
use diva_repro::nn::train::{evaluate, train_classifier, TrainCfg};
use diva_repro::quant::{QatNetwork, QuantCfg};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(1);

    // 1. Data: a 16-class procedural stand-in for ImageNet.
    println!("generating data ...");
    let data_cfg = ImagenetCfg::default();
    let train = synth_imagenet(1024, &data_cfg, 10);
    let val = synth_imagenet(512, &data_cfg, 11);

    // 2. The "original" full-precision model, trained on the server.
    println!("training the original model ...");
    let mut original = Architecture::ResNet.build(&ModelCfg::standard(train.num_classes), &mut rng);
    let cfg = TrainCfg {
        epochs: 14,
        batch_size: 32,
        lr: 0.02,
        momentum: 0.9,
        weight_decay: 1e-4,
    };
    train_classifier(&mut original, &train.images, &train.labels, &cfg, &mut rng);
    // Decayed second phase to converge.
    train_classifier(
        &mut original,
        &train.images,
        &train.labels,
        &TrainCfg {
            epochs: 6,
            lr: 0.005,
            ..cfg
        },
        &mut rng,
    );

    // 3. Edge adaptation: calibrate + quantization-aware fine-tuning.
    println!("adapting for the edge (int8 QAT) ...");
    let mut adapted = QatNetwork::new(original.clone(), QuantCfg::default());
    adapted.calibrate(&train.images);
    adapted.train_qat(
        &train.images,
        &train.labels,
        &TrainCfg {
            epochs: 2,
            lr: 0.004,
            ..cfg
        },
        &mut rng,
    );
    println!(
        "  original accuracy: {:.1}%   adapted accuracy: {:.1}%",
        100.0 * evaluate(&original, &val.images, &val.labels),
        100.0 * evaluate(&adapted, &val.images, &val.labels),
    );

    // 4. Attack set: images both models get right (§5.1 protocol).
    let attack_set = select_validation(&val, &[&original, &adapted], 4);
    println!("attacking {} mutually-correct images ...", attack_set.len());

    // 5. PGD (baseline) vs DIVA (evasive).
    let atk = AttackCfg::paper_default();
    let pgd = pgd_attack(&adapted, &attack_set.images, &attack_set.labels, &atk);
    let diva = diva_attack(
        &original,
        &adapted,
        &attack_set.images,
        &attack_set.labels,
        1.0,
        &atk,
    );
    for (name, adv) in [("PGD ", pgd), ("DIVA", diva)] {
        let counts = evaluate_attack(&original, &adapted, &adv, &attack_set.labels);
        println!(
            "  {name}: evasive success {:5.1}%   edge fooled {:5.1}%   server also fooled {:5.1}%",
            100.0 * counts.top1_rate(),
            100.0 * counts.attack_only_rate(),
            100.0 * counts.original_fooled_rate(),
        );
    }
    println!("\nDIVA fools the edge model while the server model still validates the input.");
}
